package main

// Server-level durability: every /update acknowledged over HTTP must
// survive an abrupt process death (simulated by re-opening the store
// directory without any graceful shutdown), a torn WAL tail must not take
// acknowledged batches with it, a WAL append failure must wedge writes
// without disturbing the published read state, and a follower server must
// converge on the leader's acknowledged batches.

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cxrpq/internal/graph"
)

// durableServer opens (or re-opens) a store directory and serves it as db
// "g1", exactly like `cxrpq-serve -data-dir` does.
func durableServer(t *testing.T, dir string) (*server, *httptest.Server, *graph.Store) {
	t.Helper()
	st, err := graph.OpenStore(dir, graph.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(serverOptions{maxInflight: 8, sessionCap: 16})
	e := srv.addDB("g1", st.DB())
	e.store = st
	srv.recoverCursors(e) // same startup sequence as main.go
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts, st
}

func countA(t *testing.T, url string) float64 {
	t.Helper()
	code, out := postJSON(t, url+"/query", `{"db":"g1","query":"ans(x, y)\nx y : a"}`)
	if code != http.StatusOK {
		t.Fatalf("query: %d %v", code, out)
	}
	return out["count"].(float64)
}

func TestServerCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	_, ts, _ := durableServer(t, dir)

	// Acknowledged batches: each /update returned 200, so each is durable.
	var rev float64
	for _, edges := range []string{"u a v", "u a w", `v a w\nw b u`, "w a x"} {
		code, out := postJSON(t, ts.URL+"/update", `{"db":"g1","edges":"`+edges+`"}`)
		if code != http.StatusOK {
			t.Fatalf("update %q: %d %v", edges, code, out)
		}
		rev = out["revision"].(float64)
	}
	want := countA(t, ts.URL)
	ts.Close()
	// No store.Close(), no checkpoint: the "process" died holding its WAL.

	_, ts2, st2 := durableServer(t, dir)
	if got := countA(t, ts2.URL); got != want {
		t.Fatalf("recovered server answers %v rows, acked state had %v", got, want)
	}
	if got := st2.DB().Revision(); float64(got) != rev {
		t.Fatalf("recovered at revision %d, last ack was %v", got, rev)
	}
	if st2.Stats().ReplayedRecords == 0 {
		t.Fatal("recovery replayed nothing; the updates were not in the WAL")
	}

	// A torn tail — half an append from a crash mid-write — is dropped on
	// the next recovery without touching the acknowledged prefix.
	ts2.Close()
	wal := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, ts3, _ := durableServer(t, dir)
	if got := countA(t, ts3.URL); got != want {
		t.Fatalf("after torn tail: %v rows, want %v", got, want)
	}
	// And the store accepts new acknowledged writes from there.
	if code, out := postJSON(t, ts3.URL+"/update", `{"db":"g1","edges":"x a y"}`); code != http.StatusOK {
		t.Fatalf("post-recovery update: %d %v", code, out)
	}
	if got := countA(t, ts3.URL); got != want+1 {
		t.Fatalf("post-recovery update not visible: %v rows, want %v", got, want+1)
	}
}

func TestServerWALFailureWedgesWrites(t *testing.T) {
	dir := t.TempDir()
	_, ts, st := durableServer(t, dir)
	if code, out := postJSON(t, ts.URL+"/update", `{"db":"g1","edges":"u a v"}`); code != http.StatusOK {
		t.Fatalf("update: %d %v", code, out)
	}
	want := countA(t, ts.URL)

	// Break the WAL out from under the server: the next append fails, the
	// batch must not be acknowledged or published.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	code, out := postJSON(t, ts.URL+"/update", `{"db":"g1","edges":"u a z"}`)
	if code != http.StatusInternalServerError {
		t.Fatalf("update on broken WAL: %d %v, want 500", code, out)
	}
	if got := countA(t, ts.URL); got != want {
		t.Fatalf("unacknowledged batch visible to readers: %v rows, want %v", got, want)
	}
	// The entry is wedged: further writes are refused outright...
	code, out = postJSON(t, ts.URL+"/update", `{"db":"g1","edges":"u a q"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("update on wedged entry: %d %v, want 503", code, out)
	}
	// ...while reads keep serving the last durable published state.
	if got := countA(t, ts.URL); got != want {
		t.Fatalf("wedged entry disturbed reads: %v rows, want %v", got, want)
	}
}

func TestServerFollowerTailsLeader(t *testing.T) {
	dir := t.TempDir()
	_, lts, _ := durableServer(t, dir)
	if code, out := postJSON(t, lts.URL+"/update", `{"db":"g1","edges":"u a v"}`); code != http.StatusOK {
		t.Fatalf("leader update: %d %v", code, out)
	}

	fo, err := graph.OpenFollower(dir)
	if err != nil {
		t.Fatal(err)
	}
	fsrv := newServer(serverOptions{maxInflight: 8, sessionCap: 16})
	fe := fsrv.addDB("g1", fo.DB())
	fe.follower = fo
	stop := make(chan struct{})
	defer close(stop)
	go fe.tail(2*time.Millisecond, stop)
	fts := httptest.NewServer(fsrv.handler())
	defer fts.Close()

	if got := countA(t, fts.URL); got != 1 {
		t.Fatalf("follower recovered %v rows, want 1", got)
	}
	// The follower is read-only.
	if code, out := postJSON(t, fts.URL+"/update", `{"db":"g1","edges":"x a y"}`); code != http.StatusForbidden {
		t.Fatalf("follower accepted a write: %d %v", code, out)
	}
	// A leader batch surfaces within the poll cadence.
	if code, out := postJSON(t, lts.URL+"/update", `{"db":"g1","edges":"v a w\nw a u"}`); code != http.StatusOK {
		t.Fatalf("leader update: %d %v", code, out)
	}
	deadline := time.Now().Add(5 * time.Second)
	for countA(t, fts.URL) != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged: %v rows, want 3", countA(t, fts.URL))
		}
		time.Sleep(5 * time.Millisecond)
	}
}
