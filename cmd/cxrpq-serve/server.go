package main

// The HTTP/JSON front-end over the prepared-query subsystem: named graph
// databases are loaded at startup (or mutated through /update), and every
// (database, query text) pair is served by a pooled cxrpq.Session, so
// repeated queries reuse the compiled plan and the per-database relation
// caches. A bounded in-flight limiter sheds load with 429 instead of
// queueing unboundedly.
//
//	POST /query   {"db":"g1","query":"ans(x,y)\nx y : a","mode":"eval"}
//	POST /plan    {"db":"g1","query":"ans(x,y)\nx y : a"}
//	POST /update  {"db":"g1","edges":"u a v\nv b w","remove":"u a w"}
//	GET  /healthz
//	GET  /stats
//
// /update delta semantics: the request is one batched graph.Delta — "edges"
// are added (interning unknown node names), "remove" deletes one occurrence
// of each listed edge, which must exist (a delta naming a missing edge or
// node is rejected with 400 and nothing is applied). The batch runs under
// the database's write lock, so it is quiescent with respect to queries,
// and every pooled session is eagerly refreshed through the
// incremental-update subsystem before the lock is released: an insert-only
// batch over known labels keeps each session's atom relations (retained or
// frontier-extended per entry, see cxrpq.Session) and its feasibility memo,
// dropping only result/label/plan caches; removals, brand-new labels, or an
// add-only batch that merely cancels a previous removal fall back to the
// historical whole-epoch flush or wholesale retention respectively.
// Sessions created later, and sessions of other server replicas sharing
// the DB, maintain themselves lazily from the same per-revision delta log.
// The response reports the net delta; /stats exposes the per-database
// retained-vs-rebuilt maintenance counters (graph index/stats/alphabet and
// aggregated session caches).

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/engine"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/xregex"
)

type serverOptions struct {
	maxInflight int  // concurrent /query+/update requests admitted
	sessionCap  int  // pooled sessions per database
	pprof       bool // mount net/http/pprof under /debug/pprof/
}

func defaultOptions() serverOptions {
	return serverOptions{maxInflight: 64, sessionCap: 128}
}

// dbEntry is one named database with its session pool. Queries hold the
// read lock; /update holds the write lock, so mutations are quiescent with
// respect to evaluations (the Session invalidation contract).
type dbEntry struct {
	name string

	mu sync.RWMutex
	db *graph.DB

	sessMu   sync.Mutex
	sessions map[string]*cxrpq.Session // query text -> bound session
}

// session returns the pooled session for a query text, preparing and
// binding it on first use. The pool is bounded: on overflow the whole pool
// is dropped (sessions are pure caches).
func (e *dbEntry) session(src string, cap int) (*cxrpq.Session, error) {
	e.sessMu.Lock()
	if s, ok := e.sessions[src]; ok {
		e.sessMu.Unlock()
		return s, nil
	}
	e.sessMu.Unlock()
	// Compile outside the lock: preparing a plan walks the whole query, and
	// holding sessMu through it would serialize pooled lookups behind it.
	p, err := cxrpq.PrepareSrc(src)
	if err != nil {
		return nil, err
	}
	e.sessMu.Lock()
	defer e.sessMu.Unlock()
	if s, ok := e.sessions[src]; ok { // raced with another compiler
		return s, nil
	}
	if len(e.sessions) >= cap {
		e.sessions = map[string]*cxrpq.Session{}
	}
	s := p.Bind(e.db)
	e.sessions[src] = s
	return s, nil
}

type server struct {
	opts     serverOptions
	inflight chan struct{}
	start    time.Time

	mu  sync.Mutex
	dbs map[string]*dbEntry
}

func newServer(opts serverOptions) *server {
	if opts.maxInflight <= 0 {
		opts.maxInflight = defaultOptions().maxInflight
	}
	if opts.sessionCap <= 0 {
		opts.sessionCap = defaultOptions().sessionCap
	}
	return &server{
		opts:     opts,
		inflight: make(chan struct{}, opts.maxInflight),
		start:    time.Now(),
		dbs:      map[string]*dbEntry{},
	}
}

// addDB registers a named database.
func (s *server) addDB(name string, db *graph.DB) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dbs[name] = &dbEntry{name: name, db: db, sessions: map[string]*cxrpq.Session{}}
}

func (s *server) entry(name string) (*dbEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.dbs[name]
	return e, ok
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.limited(s.handleQuery))
	mux.HandleFunc("/plan", s.limited(s.handlePlan))
	mux.HandleFunc("/update", s.limited(s.handleUpdate))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	if s.opts.pprof {
		// Mounted explicitly (not via the package's DefaultServeMux side
		// effect) so profiling endpoints exist only behind the -pprof flag
		// and never bypass it; deliberately outside the in-flight limiter.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// limited wraps a handler with the bounded in-flight admission gate: when
// maxInflight requests are already running, the request is shed with 429
// rather than queued.
func (s *server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			h(w, r)
		default:
			writeErr(w, http.StatusTooManyRequests, fmt.Errorf("server busy: %d requests in flight", s.opts.maxInflight))
		}
	}
}

type queryRequest struct {
	DB        string   `json:"db,omitempty"`        // named database, or
	Graph     string   `json:"graph,omitempty"`     // inline graph (one "from label to" per line)
	Query     string   `json:"query"`               // textual CXRPQ
	Mode      string   `json:"mode,omitempty"`      // eval (default) | bool | check | explain
	Semantics string   `json:"semantics,omitempty"` // auto (default) | bounded | log
	K         *int     `json:"k,omitempty"`         // image bound, required for semantics=bounded (k ≥ 0)
	Tuple     []string `json:"tuple,omitempty"`     // node names (check/explain)
}

type explanationJSON struct {
	Nodes  map[string]string `json:"nodes"`            // node variable -> node name
	Words  []string          `json:"words"`            // per query edge
	Images map[string]string `json:"images,omitempty"` // string variable -> image
}

type queryResponse struct {
	Fragment    string           `json:"fragment"`
	Count       int              `json:"count"`
	Answers     [][]string       `json:"answers,omitempty"`
	Bool        *bool            `json:"bool,omitempty"`
	Explanation *explanationJSON `json:"explanation,omitempty"`
	ElapsedMS   float64          `json:"elapsed_ms"`
}

type errResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errResponse{Error: err.Error()})
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	if req.Query == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing query"))
		return
	}

	// Resolve the database: a pooled named one, or an inline one-off graph.
	var sess *cxrpq.Session
	var db *graph.DB
	var unlock func()
	switch {
	case req.DB != "" && req.Graph != "":
		writeErr(w, http.StatusBadRequest, fmt.Errorf("give either db or graph, not both"))
		return
	case req.DB != "":
		e, ok := s.entry(req.DB)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown db %q", req.DB))
			return
		}
		e.mu.RLock()
		unlock = e.mu.RUnlock
		db = e.db
		var err error
		sess, err = e.session(req.Query, s.opts.sessionCap)
		if err != nil {
			unlock()
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	case req.Graph != "":
		var err error
		db, err = graph.Parse(req.Graph)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		p, err := cxrpq.PrepareSrc(req.Query)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		sess = p.Bind(db)
		unlock = func() {}
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing db or graph"))
		return
	}
	defer unlock()

	sem, k, err := resolveSemantics(req.Semantics, req.K)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	op := req.Mode
	if op == "" {
		op = "eval"
	}
	switch op {
	case "eval", "bool", "check", "explain":
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown mode %q", op))
		return
	}
	var tuple pattern.Tuple
	if op == "check" || (op == "explain" && len(req.Tuple) > 0) {
		tuple = make(pattern.Tuple, len(req.Tuple))
		for i, name := range req.Tuple {
			id, ok := db.Lookup(name)
			if !ok {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown node %q", name))
				return
			}
			tuple[i] = id
		}
	}

	start := time.Now()
	resp := sess.Do(cxrpq.Request{Op: op, Semantics: sem, K: k, Tuple: tuple})
	if resp.Err != nil {
		writeErr(w, http.StatusBadRequest, resp.Err)
		return
	}
	out := queryResponse{
		Fragment:  sess.Fragment(),
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	switch op {
	case "eval":
		out.Count = resp.Tuples.Len()
		for _, t := range resp.Tuples.Sorted() {
			row := make([]string, len(t))
			for i, v := range t {
				row[i] = db.Name(v)
			}
			out.Answers = append(out.Answers, row)
		}
	case "bool", "check":
		b := resp.OK
		out.Bool = &b
		if b {
			out.Count = 1
		}
	case "explain":
		b := resp.OK
		out.Bool = &b
		if resp.Explanation != nil {
			ex := &explanationJSON{Nodes: map[string]string{}, Words: resp.Explanation.Words, Images: resp.Explanation.Images}
			for v, id := range resp.Explanation.NodeOf {
				ex.Nodes[v] = db.Name(id)
			}
			out.Explanation = ex
			out.Count = 1
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// resolveSemantics validates the request's semantics/k pair and maps it
// onto a Session batch-request: a k is accepted exactly when
// semantics=bounded, where any k ≥ 0 is legal (k = 0 restricts images to ε).
func resolveSemantics(semantics string, k *int) (string, int, error) {
	switch semantics {
	case "", "auto":
		if k != nil {
			return "", 0, fmt.Errorf("k requires semantics=bounded")
		}
		return "auto", 0, nil
	case "bounded":
		if k == nil || *k < 0 {
			return "", 0, fmt.Errorf("semantics=bounded requires k >= 0")
		}
		return "bounded", *k, nil
	case "log":
		if k != nil {
			return "", 0, fmt.Errorf("k requires semantics=bounded")
		}
		return "log", 0, nil
	default:
		return "", 0, fmt.Errorf("unknown semantics %q", semantics)
	}
}

type planRequest struct {
	DB    string `json:"db,omitempty"`    // named database, or
	Graph string `json:"graph,omitempty"` // inline graph
	Query string `json:"query"`           // textual CXRPQ
}

type planLabelJSON struct {
	Label  string `json:"label"`
	Edges  int    `json:"edges"`
	Srcs   int    `json:"srcs"`
	Tgts   int    `json:"tgts"`
	MaxOut int    `json:"max_out"`
	MaxIn  int    `json:"max_in"`
}

type planResponse struct {
	*cxrpq.PlanReport
	Nodes  int             `json:"nodes"`
	Edges  int             `json:"edges"`
	Labels []planLabelJSON `json:"labels"`
}

// handlePlan is the planner debug endpoint: it resolves the (database,
// query) pair exactly like /query but returns the session's physical plan
// — the cost-based join order with estimated cardinalities — along with
// the per-label graph statistics the estimates came from, instead of
// evaluating anything.
func (s *server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req planRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	if req.Query == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing query"))
		return
	}
	var sess *cxrpq.Session
	var db *graph.DB
	unlock := func() {}
	switch {
	case req.DB != "" && req.Graph != "":
		writeErr(w, http.StatusBadRequest, fmt.Errorf("give either db or graph, not both"))
		return
	case req.DB != "":
		e, ok := s.entry(req.DB)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown db %q", req.DB))
			return
		}
		e.mu.RLock()
		unlock = e.mu.RUnlock
		db = e.db
		var err error
		sess, err = e.session(req.Query, s.opts.sessionCap)
		if err != nil {
			unlock()
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	case req.Graph != "":
		var err error
		db, err = graph.Parse(req.Graph)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		p, err := cxrpq.PrepareSrc(req.Query)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		sess = p.Bind(db)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing db or graph"))
		return
	}
	defer unlock()

	rep, err := sess.PlanReport()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	st := db.Stats()
	out := planResponse{PlanReport: rep, Nodes: st.Nodes, Edges: st.Edges}
	for _, ls := range st.BySym {
		out.Labels = append(out.Labels, planLabelJSON{
			Label: string(ls.Sym), Edges: ls.Edges, Srcs: ls.Srcs, Tgts: ls.Tgts,
			MaxOut: ls.MaxOut, MaxIn: ls.MaxIn,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

type updateRequest struct {
	DB     string `json:"db"`
	Edges  string `json:"edges,omitempty"`  // edges to add, one "from label to" per line; nodes created as needed
	Remove string `json:"remove,omitempty"` // edges to remove (must exist), same format
}

type updateResponse struct {
	DB         string   `json:"db"`
	Revision   uint64   `json:"revision"`
	Nodes      int      `json:"nodes"`
	Edges      int      `json:"edges"`
	Added      int      `json:"added"`     // net added edges of the batch
	Removed    int      `json:"removed"`   // net removed edges of the batch
	NewNodes   int      `json:"new_nodes"` // nodes interned by the batch
	NewLabels  []string `json:"new_labels,omitempty"`
	InsertOnly bool     `json:"insert_only"`
}

func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	e, ok := s.entry(req.DB)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown db %q", req.DB))
		return
	}
	var delta graph.Delta
	var err error
	if delta.Add, err = graph.ParseDeltaEdges(req.Edges); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if delta.Del, err = graph.ParseDeltaEdges(req.Remove); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Apply under the write lock: no query is in flight, so the batch is
	// quiescent. Pooled sessions are refreshed eagerly through the
	// incremental-update path — the delta cost is paid here, at write time,
	// not by the first reader of each session.
	e.mu.Lock()
	info, err := e.db.ApplyDelta(delta)
	if err != nil {
		e.mu.Unlock()
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	e.sessMu.Lock()
	sessions := make([]*cxrpq.Session, 0, len(e.sessions))
	for _, sess := range e.sessions {
		sessions = append(sessions, sess)
	}
	e.sessMu.Unlock()
	// Each session maintains from the shared mutation log independently; if
	// per-update latency under the write lock ever matters with very large
	// pools, the net delta and the relation-extension frontier could be
	// derived once here and shared across the refreshes.
	for _, sess := range sessions {
		sess.Refresh()
	}
	resp := updateResponse{
		DB: e.name, Revision: e.db.Revision(), Nodes: e.db.NumNodes(), Edges: e.db.NumEdges(),
		Added: len(info.Added), Removed: len(info.Removed), NewNodes: info.NewNodes,
		InsertOnly: info.InsertOnly(),
	}
	for _, l := range info.NewLabels {
		resp.NewLabels = append(resp.NewLabels, string(l))
	}
	e.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ms": float64(time.Since(s.start).Microseconds()) / 1000,
	})
}

type dbStats struct {
	Name     string `json:"name"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`
	Revision uint64 `json:"revision"`
	Sessions int    `json:"sessions"`

	// Delta-maintenance counters: which path mutations took through the
	// database's derived state and the pooled sessions' caches.
	Maint     graph.MaintStats `json:"maint"`
	SessMaint sessMaintStats   `json:"sessions_maint"`
}

// sessMaintStats aggregates cache-maintenance counters over a database's
// pooled sessions: how often deltas were applied fine-grained vs flushed,
// and how many relation-cache entries survived (retained or extended)
// rather than being recomputed from scratch.
type sessMaintStats struct {
	DeltaApplies uint64 `json:"delta_applies"`
	Retains      uint64 `json:"retains"`
	FullRebuilds uint64 `json:"full_rebuilds"`
	RelRetained  uint64 `json:"rel_retained"`
	RelExtended  uint64 `json:"rel_extended"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.dbs))
	for name := range s.dbs {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	var dbs []dbStats
	for _, name := range names {
		e, ok := s.entry(name)
		if !ok {
			continue
		}
		e.mu.RLock()
		st := dbStats{Name: e.name, Nodes: e.db.NumNodes(), Edges: e.db.NumEdges(), Revision: e.db.Revision(),
			Maint: e.db.MaintStats()}
		e.mu.RUnlock()
		e.sessMu.Lock()
		st.Sessions = len(e.sessions)
		for _, sess := range e.sessions {
			ss := sess.Stats()
			st.SessMaint.DeltaApplies += ss.Maint.DeltaApplies
			st.SessMaint.Retains += ss.Maint.Retains
			st.SessMaint.FullRebuilds += ss.Maint.FullRebuilds
			st.SessMaint.RelRetained += ss.Rel.Retained
			st.SessMaint.RelExtended += ss.Rel.Extended
		}
		e.sessMu.Unlock()
		dbs = append(dbs, st)
	}
	mc := xregex.MatchCacheInfo()
	writeJSON(w, http.StatusOK, map[string]any{
		"dbs":         dbs,
		"match_cache": map[string]any{"hits": mc.Hits, "misses": mc.Misses, "size": mc.Size},
		"inflight":    len(s.inflight),
		// Sharded reachability-kernel counters: batch/level/source totals,
		// edge volume, cross-shard exchange volume and the per-shard
		// breakdown (for shard-count tuning alongside -pprof).
		"engine": engine.ReachBatchStats(),
	})
}

// parseDBFlag splits a -db flag value "name=path".
func parseDBFlag(v string) (name, path string, err error) {
	i := strings.IndexByte(v, '=')
	if i <= 0 || i == len(v)-1 {
		return "", "", fmt.Errorf("bad -db value %q, want name=path", v)
	}
	return v[:i], v[i+1:], nil
}
