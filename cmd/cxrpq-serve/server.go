package main

// The HTTP/JSON front-end over the prepared-query subsystem: named graph
// databases are loaded at startup (or mutated through /update), and every
// (database, query text) pair is served by a pooled cxrpq.Session, so
// repeated queries reuse the compiled plan and the per-database relation
// caches. A two-tier in-flight limiter degrades before it rejects: beyond
// the soft cap, query evaluation runs under a shed budget and returns the
// rows found so far with "truncated" and "shed" set; only beyond twice the
// cap are requests refused with 429.
//
//	POST /query   {"db":"g1","query":"ans(x,y)\nx y : a","mode":"eval"}
//	POST /plan    {"db":"g1","query":"ans(x,y)\nx y : a"}
//	POST /update  {"db":"g1","edges":"u a v\nv b w","remove":"u a w"}
//	GET  /healthz
//	GET  /stats
//
// /query streaming, pagination and deadlines: evaluation is pull-based
// (cxrpq.Session.Stream). "limit" caps the rows of this response page; when
// more rows remain the response carries an opaque "cursor" token, and the
// next page is fetched by POSTing {"cursor":"...","limit":n} (no db/query —
// the token identifies the parked stream). Cursors are invalidated by any
// /update of their database (410 Gone), expire after an idle TTL, and the
// registry is capacity-bounded (oldest evicted first); a finished cursor is
// reclaimed with its final page. "deadline_ms" bounds the evaluation: on
// expiry (or client disconnect — the request context is honored inside the
// evaluation loops) the rows found so far are returned with
// "truncated": true — and every later page of the same cursor carries
// "truncated" too, so a deadline-cut ranked result can never be mistaken
// for a complete top-k mid-pagination. The deadline is set when the stream
// opens and covers the cursor's whole lifetime across pages. "ranked": true
// streams shortest-witness-first (mode=eval only); each answer's witness
// cost is returned in "costs". Under the default order the ranked stream is
// incremental (any-k over partial assignments): the first row surfaces
// after one cheapest-extension chain, not a full drain. "weights" (ranked
// eval only) generalizes the witness cost from edge count to a per-label
// weight map, e.g. {"a":1,"b":4}; unlisted labels cost 1, negative weights
// clamp to 0. "rows_streamed" counts rows delivered by the cursor so far;
// /stats aggregates per-database time-to-first-row and rows-streamed
// counters.
//
// Cursor persistence (-data-dir, leader only): parking a *ranked* cursor
// also appends a side record to the database's WAL (graph.Store.AppendSide)
// carrying the token, query, semantics, weights, revision pin, deadline and
// rows-delivered count; each later fetch re-appends it with the new count,
// and closing (exhaustion, eviction, invalidation) appends a tombstone. On
// restart the server re-parks every live-recorded cursor whose revision pin
// matches the recovered database: the stream is re-opened and fast-forwarded
// past the delivered prefix — exact, because ranked order is deterministic
// at a fixed revision under the default comparator — so clients resume
// pagination instead of receiving 410. A record whose pin mismatches (the
// WAL replayed past it), whose deadline passed, or which a checkpoint
// truncated away is not resumed: those tokens fall back to the usual 410.
// Unranked cursors are never persisted (their row order is not guaranteed
// deterministic across a restart).
//
// /update delta semantics: the request is one batched graph.Delta — "edges"
// are added (interning unknown node names), "remove" deletes one occurrence
// of each listed edge, which must exist (a delta naming a missing edge or
// node is rejected with 400 and nothing is applied). Reads are MVCC: every
// database publishes an immutable graph.Snapshot view plus the session pool
// forked onto it (dbState), and /query, /plan and parked cursors run
// entirely against the published state — they take no lock a writer can
// hold, so reads never block on /update and an open cursor keeps its pinned
// revision. The writer applies the batch to its private live DB, makes it
// durable (below), then publishes a fresh snapshot with every pooled
// session forked through the incremental-update subsystem: an insert-only
// batch over known labels keeps each session's atom relations (retained or
// frontier-extended per entry, see cxrpq.Session.Fork) and its feasibility
// memo, dropping only result/label/plan caches; removals or brand-new
// labels fall back to a fresh epoch. The maintenance cost is paid at write
// time, off the reader path. The response reports the net delta; /stats
// exposes the per-database retained-vs-rebuilt maintenance counters.
//
// Durability (-data-dir): each named database lives in <dir>/<name> as a
// checkpoint plus a write-ahead log of delta batches (graph.Store). /update
// acknowledges only after the WAL record is fsynced — a kill -9 at any
// moment loses no acknowledged batch; on restart the server recovers by
// loading the checkpoint and replaying the log (a torn tail is an append
// that was never acknowledged, and is dropped). A WAL append failure leaves
// the last durable state published and fails the batch with 500; the entry
// then refuses further writes (503) rather than diverge from its log.
// -follower serves the same directories read-only, tailing each WAL and
// republishing snapshots as the leader's batches land; /update is refused
// with 403 there. /stats carries the durability counters (wal_bytes,
// checkpoints, replayed_records, ...).

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cxrpq/internal/cxrpq"
	"cxrpq/internal/engine"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/planner"
	"cxrpq/internal/xregex"
)

type serverOptions struct {
	maxInflight int           // soft admission cap; hard rejection at 2x
	sessionCap  int           // pooled sessions per database
	shedBudget  time.Duration // eval budget imposed on requests admitted beyond the soft cap
	cursorCap   int           // open cursors held across requests
	cursorTTL   time.Duration // idle cursor lifetime
	pprof       bool          // mount net/http/pprof under /debug/pprof/
}

func defaultOptions() serverOptions {
	return serverOptions{
		maxInflight: 64, sessionCap: 128,
		shedBudget: 100 * time.Millisecond,
		cursorCap:  64, cursorTTL: time.Minute,
	}
}

// dbState is one published MVCC epoch of a database: an immutable snapshot
// view of the graph plus the session pool bound to it. Readers load the
// current state with a single atomic pointer read and then share nothing
// with the writer — the view's storage is frozen (graph.Snapshot), and the
// pooled sessions are concurrency-safe caches pinned to that view.
type dbState struct {
	db  *graph.DB // frozen snapshot view
	rev uint64    // == db.Revision(), cached for the lock-free cursor check

	sessMu   sync.Mutex
	sessions map[string]*cxrpq.Session // query text -> session bound to db
}

// dbEntry is one named database: the writer-owned live DB with its
// durability hooks, and the atomically published read state. Queries never
// lock the entry; /update (or the follower tail loop) serializes on writeMu,
// mutates live, persists, and publishes a successor dbState.
type dbEntry struct {
	name string

	writeMu sync.Mutex // serializes mutators; guards live mutation, store, walErr
	// live is the writer-private mutable DB. The pointer is atomic only
	// because a follower reload swaps it while /stats reads the (atomic)
	// maintenance counters through it; all mutation happens under writeMu.
	live     atomic.Pointer[graph.DB]
	store    *graph.Store    // durability, nil without -data-dir
	follower *graph.Follower // non-nil on a read-only replica
	walErr   error           // a failed append wedges the entry (503)

	state atomic.Pointer[dbState]

	// onPublish fires after every publish with the new revision; the server
	// hooks it to eagerly invalidate parked cursors pinned to older
	// revisions, so the leader's /update and a follower's tail loop enforce
	// the same 410 contract at the same moment.
	onPublish func(rev uint64)

	qmu sync.Mutex
	qs  queryCounters
}

// publish snapshots the live DB and forks every pooled session of the
// previous state onto the new view — the MVCC publish step. The caller
// holds writeMu. Sessions racing into the old pool after the fork loop are
// simply dropped with it (they are pure caches, recompiled on demand).
func (e *dbEntry) publish() *dbState {
	view := e.live.Load().Snapshot().DB()
	ns := &dbState{db: view, rev: view.Revision(),
		sessions: map[string]*cxrpq.Session{}}
	if old := e.state.Load(); old != nil {
		old.sessMu.Lock()
		for src, sess := range old.sessions {
			ns.sessions[src] = sess.Fork(view)
		}
		old.sessMu.Unlock()
	}
	e.state.Store(ns)
	if e.onPublish != nil {
		e.onPublish(ns.rev)
	}
	return ns
}

// queryCounters aggregates the streaming telemetry of one database's
// /query traffic: how fast first rows arrive and how much is delivered,
// shed or cut short.
type queryCounters struct {
	Queries      int64 // /query evaluations (cursor fetches excluded)
	RowsStreamed int64 // rows delivered, across first pages and cursor fetches
	TTFRTotalNS  int64 // summed time to first row (or to completion when empty)
	Shed         int64 // evaluations degraded by the soft-saturation limiter
	Truncated    int64 // evaluations cut by a deadline, context or shed budget
}

func (e *dbEntry) recordQuery(ttfr time.Duration, rows int, shed, truncated bool) {
	if e == nil {
		return // inline one-off graph: no entry to account to
	}
	e.qmu.Lock()
	e.qs.Queries++
	e.qs.RowsStreamed += int64(rows)
	e.qs.TTFRTotalNS += int64(ttfr)
	if shed {
		e.qs.Shed++
	}
	if truncated {
		e.qs.Truncated++
	}
	e.qmu.Unlock()
}

func (e *dbEntry) recordRows(rows int) {
	if e == nil {
		return
	}
	e.qmu.Lock()
	e.qs.RowsStreamed += int64(rows)
	e.qmu.Unlock()
}

// session returns the pooled session for a query text, preparing and
// binding it to this state's view on first use. The pool is bounded: on
// overflow the whole pool is dropped (sessions are pure caches).
func (st *dbState) session(src string, cap int) (*cxrpq.Session, error) {
	st.sessMu.Lock()
	if s, ok := st.sessions[src]; ok {
		st.sessMu.Unlock()
		return s, nil
	}
	st.sessMu.Unlock()
	// Compile outside the lock: preparing a plan walks the whole query, and
	// holding sessMu through it would serialize pooled lookups behind it.
	p, err := cxrpq.PrepareSrc(src)
	if err != nil {
		return nil, err
	}
	st.sessMu.Lock()
	defer st.sessMu.Unlock()
	if s, ok := st.sessions[src]; ok { // raced with another compiler
		return s, nil
	}
	if len(st.sessions) >= cap {
		st.sessions = map[string]*cxrpq.Session{}
	}
	s := p.Bind(st.db)
	st.sessions[src] = s
	return s, nil
}

type server struct {
	opts     serverOptions
	inflight chan struct{} // capacity 2*maxInflight: soft cap degrades, hard cap rejects
	start    time.Time
	cursors  *cursorRegistry

	mu  sync.Mutex
	dbs map[string]*dbEntry
}

func newServer(opts serverOptions) *server {
	def := defaultOptions()
	if opts.maxInflight <= 0 {
		opts.maxInflight = def.maxInflight
	}
	if opts.sessionCap <= 0 {
		opts.sessionCap = def.sessionCap
	}
	if opts.shedBudget <= 0 {
		opts.shedBudget = def.shedBudget
	}
	if opts.cursorCap <= 0 {
		opts.cursorCap = def.cursorCap
	}
	if opts.cursorTTL <= 0 {
		opts.cursorTTL = def.cursorTTL
	}
	return &server{
		opts:     opts,
		inflight: make(chan struct{}, 2*opts.maxInflight),
		start:    time.Now(),
		cursors:  newCursorRegistry(opts.cursorCap, opts.cursorTTL),
		dbs:      map[string]*dbEntry{},
	}
}

// addDB registers a named database and publishes its first snapshot. The
// returned entry lets startup attach durability hooks (store, follower)
// before the server begins accepting requests.
func (s *server) addDB(name string, db *graph.DB) *dbEntry {
	e := &dbEntry{name: name}
	e.onPublish = func(rev uint64) { s.invalidateCursors(e, rev) }
	e.live.Store(db)
	e.publish()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dbs[name] = e
	return e
}

// invalidateCursors drops and closes every parked cursor of e pinned to a
// revision other than rev. It runs on every publish — the fetch-time lazy
// check remains as a backstop for cursors parked concurrently with a
// publish, but eager invalidation frees the parked streams immediately and
// writes the persisted records' tombstones while the WAL generation that
// holds them is still current.
func (s *server) invalidateCursors(e *dbEntry, rev uint64) {
	var stale []*cursorRec
	s.cursors.mu.Lock()
	for id, rec := range s.cursors.recs {
		if rec.entry == e && rec.rev != rev {
			stale = append(stale, rec)
			delete(s.cursors.recs, id)
			delete(s.cursors.last, id)
		}
	}
	s.cursors.mu.Unlock()
	closeAll(stale)
}

// recoverCursors re-parks the ranked cursors persisted on e's WAL (called
// at startup, after the store is attached and before the server accepts
// requests). The last record per token wins and tombstones drop it; a
// surviving record is resumed only when its revision pin matches the
// recovered database and its deadline has not passed — anything else falls
// back to the usual 410 for that token. Resume re-opens the stream on the
// published state and fast-forwards past the rows already delivered, which
// reproduces the parked position exactly: ranked order is deterministic at
// a fixed revision under the default comparator and fixed weights.
func (s *server) recoverCursors(e *dbEntry) {
	latest := map[string]*cursorWALBlob{}
	var order []string
	for _, raw := range e.store.SideRecords(cursorWALKind) {
		var blob cursorWALBlob
		if err := json.Unmarshal(raw, &blob); err != nil || blob.Token == "" {
			continue
		}
		if blob.Closed {
			delete(latest, blob.Token)
			continue
		}
		if _, seen := latest[blob.Token]; !seen {
			order = append(order, blob.Token)
		}
		b := blob
		latest[blob.Token] = &b
	}
	st := e.state.Load()
	for _, tok := range order {
		blob := latest[tok]
		if blob == nil || blob.DB != e.name || blob.Rev != st.rev {
			continue
		}
		var deadline time.Time
		if blob.DeadlineMS != 0 {
			deadline = time.UnixMilli(blob.DeadlineMS)
			if !deadline.After(time.Now()) {
				continue
			}
		}
		weight, err := weightFromMap(blob.Weights)
		if err != nil {
			continue
		}
		sess, err := st.session(blob.Query, s.opts.sessionCap)
		if err != nil {
			log.Printf("db %s: resume cursor %s: %v", e.name, blob.Token, err)
			continue
		}
		cur, err := sess.Stream(cxrpq.StreamOptions{
			Semantics: blob.Semantics, K: blob.K, Ranked: true,
			Weight: weight, Deadline: deadline,
		})
		if err != nil {
			log.Printf("db %s: resume cursor %s: %v", e.name, blob.Token, err)
			continue
		}
		for skip := blob.Rows; skip > 0; {
			n := 4096
			if skip < int64(n) {
				n = int(skip)
			}
			got := cur.Fetch(n)
			if len(got) == 0 {
				break
			}
			skip -= int64(len(got))
		}
		rec := &cursorRec{cur: cur, entry: e, db: st.db, rev: st.rev,
			fragment: sess.Fragment(), ranked: true, limit: blob.Limit, persist: blob}
		closeAll(s.cursors.putAt(tok, rec))
		log.Printf("db %s: resumed cursor %s at revision %d (%d rows fast-forwarded)",
			e.name, blob.Token[:8], st.rev, blob.Rows)
	}
}

// tail is the follower-mode write path: poll the leader's WAL on a cadence
// and republish a snapshot whenever new records were applied (or a leader
// checkpoint forced a reload, which swaps the DB identity). It takes the
// same writeMu a leader's /update would, so the publish discipline is
// identical; readers stay lock-free either way. Runs until stop is closed.
func (e *dbEntry) tail(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		e.writeMu.Lock()
		n, err := e.follower.Poll()
		if err != nil {
			log.Printf("follower %s: poll: %v", e.name, err)
		}
		if db := e.follower.DB(); n > 0 || db != e.live.Load() {
			e.live.Store(db)
			e.publish()
		}
		e.writeMu.Unlock()
	}
}

func (s *server) entry(name string) (*dbEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.dbs[name]
	return e, ok
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.limited(s.handleQuery))
	mux.HandleFunc("/plan", s.limited(s.handlePlan))
	mux.HandleFunc("/update", s.limited(s.handleUpdate))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	if s.opts.pprof {
		// Mounted explicitly (not via the package's DefaultServeMux side
		// effect) so profiling endpoints exist only behind the -pprof flag
		// and never bypass it; deliberately outside the in-flight limiter.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// shedKey marks a request admitted beyond the soft in-flight cap; /query
// evaluates it under the shed budget and reports partial rows instead of
// refusing outright.
type shedKey struct{}

// limited wraps a handler with the two-tier in-flight admission gate. Up to
// maxInflight requests run normally; between maxInflight and 2*maxInflight
// they are admitted degraded (marked via shedKey — query work is bounded by
// the shed budget and returns the rows found so far with "truncated" and
// "shed" set, which beats returning nothing); past the hard cap the
// request is refused with 429 rather than queued unboundedly.
func (s *server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
			if len(s.inflight) > s.opts.maxInflight {
				r = r.WithContext(context.WithValue(r.Context(), shedKey{}, true))
			}
			h(w, r)
		default:
			writeErr(w, http.StatusTooManyRequests, fmt.Errorf("server busy: %d requests in flight", 2*s.opts.maxInflight))
		}
	}
}

// cursorRec is one parked stream held across /query pages: the pull
// cursor, the snapshot view it reads (frozen storage, so /update never
// perturbs it mid-stream), and the revision it opened at. A mutation still
// invalidates the cursor at the API level — pages of one stream all come
// from the current published revision, by contract — but the check is a
// lock-free comparison against the published state, not a lock shared with
// the writer.
type cursorRec struct {
	id string

	mu       sync.Mutex // serializes fetches; cursors are not concurrent-safe
	cur      *cxrpq.Cursor
	entry    *dbEntry // nil for inline one-off graphs
	db       *graph.DB
	rev      uint64
	fragment string
	ranked   bool
	limit    int            // default page size for fetches that give none
	persist  *cursorWALBlob // WAL-persisted state, nil when not persisted
	closed   bool
}

func (rec *cursorRec) close() {
	if !rec.closed {
		rec.closed = true
		rec.cur.Close()
		if rec.persist != nil {
			persistCursor(rec.entry, &cursorWALBlob{Token: rec.persist.Token, Closed: true})
			rec.persist = nil
		}
	}
}

// cursorWALKind is the graph.Store side-record kind under which parked
// ranked cursors persist (see the package comment and the record-format
// notes beside the WAL framing docs in internal/graph/wal.go).
const cursorWALKind = 1

// cursorWALBlob is the JSON payload of one cursor side record: everything
// needed to re-open the stream at the pinned revision and fast-forward past
// the rows already delivered. The last record per token wins; Closed is the
// tombstone.
type cursorWALBlob struct {
	Token      string         `json:"token"`
	DB         string         `json:"db,omitempty"`
	Query      string         `json:"query,omitempty"`
	Semantics  string         `json:"semantics,omitempty"`
	K          int            `json:"k,omitempty"`
	Limit      int            `json:"limit,omitempty"`       // default page size
	Rows       int64          `json:"rows"`                  // rows delivered so far
	Rev        uint64         `json:"rev"`                   // revision pin
	Weights    map[string]int `json:"weights,omitempty"`     // ranked per-label weights
	DeadlineMS int64          `json:"deadline_ms,omitempty"` // absolute, unix ms
	Closed     bool           `json:"closed,omitempty"`
}

// persistCursor appends the blob to the entry's WAL as a side record.
// Best-effort by contract: a failure costs a resumable cursor (410 after
// restart), never the entry's write availability.
func persistCursor(e *dbEntry, blob *cursorWALBlob) {
	if e == nil || e.store == nil || blob == nil {
		return
	}
	b, err := json.Marshal(blob)
	if err != nil {
		return
	}
	if err := e.store.AppendSide(cursorWALKind, b); err != nil {
		log.Printf("db %s: persisting cursor %s: %v", e.name, blob.Token, err)
	}
}

// cursorRegistry maps opaque tokens to parked cursors, bounded by capacity
// (least-recently-used evicted first) and idle TTL.
type cursorRegistry struct {
	mu   sync.Mutex
	recs map[string]*cursorRec
	last map[string]time.Time
	cap  int
	ttl  time.Duration
}

func newCursorRegistry(cap int, ttl time.Duration) *cursorRegistry {
	return &cursorRegistry{recs: map[string]*cursorRec{}, last: map[string]time.Time{}, cap: cap, ttl: ttl}
}

// randRead sources cursor-token entropy; a package variable so tests can
// inject a failing reader.
var randRead = rand.Read

// put registers a cursor under a fresh token and returns the token plus any
// records evicted by TTL or capacity — the caller closes those outside the
// registry lock. A crypto/rand failure is reported, not panicked: it fails
// one request, the server keeps serving. A non-positive capacity means
// unbounded — the eviction loop must not run then, since with nothing
// evictable per pass it would never terminate.
func (cr *cursorRegistry) put(rec *cursorRec) (string, []*cursorRec, error) {
	var b [16]byte
	if _, err := randRead(b[:]); err != nil {
		return "", nil, fmt.Errorf("minting cursor token: %w", err)
	}
	tok := hex.EncodeToString(b[:])
	return tok, cr.putAt(tok, rec), nil
}

// putAt registers rec under a caller-chosen token — restart resume re-parks
// a recovered cursor under its original token, which the client still holds.
func (cr *cursorRegistry) putAt(tok string, rec *cursorRec) []*cursorRec {
	now := time.Now()
	cr.mu.Lock()
	defer cr.mu.Unlock()
	evicted := cr.sweepLocked(now)
	for cr.cap > 0 && len(cr.recs) >= cr.cap {
		oldest, at := "", now
		for id, t := range cr.last {
			if !t.After(at) {
				oldest, at = id, t
			}
		}
		evicted = append(evicted, cr.recs[oldest])
		delete(cr.recs, oldest)
		delete(cr.last, oldest)
	}
	rec.id = tok
	cr.recs[tok] = rec
	cr.last[tok] = now
	return evicted
}

// get looks a token up, refreshing its idle clock. Expired records are
// swept and returned for the caller to close.
func (cr *cursorRegistry) get(id string) (*cursorRec, []*cursorRec) {
	now := time.Now()
	cr.mu.Lock()
	defer cr.mu.Unlock()
	evicted := cr.sweepLocked(now)
	rec := cr.recs[id]
	if rec != nil {
		cr.last[id] = now
	}
	return rec, evicted
}

func (cr *cursorRegistry) drop(id string) {
	cr.mu.Lock()
	delete(cr.recs, id)
	delete(cr.last, id)
	cr.mu.Unlock()
}

func (cr *cursorRegistry) open() int {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	return len(cr.recs)
}

func (cr *cursorRegistry) sweepLocked(now time.Time) []*cursorRec {
	var evicted []*cursorRec
	for id, t := range cr.last {
		if now.Sub(t) > cr.ttl {
			evicted = append(evicted, cr.recs[id])
			delete(cr.recs, id)
			delete(cr.last, id)
		}
	}
	return evicted
}

func closeAll(recs []*cursorRec) {
	for _, rec := range recs {
		rec.mu.Lock()
		rec.close()
		rec.mu.Unlock()
	}
}

type queryRequest struct {
	DB         string   `json:"db,omitempty"`          // named database, or
	Graph      string   `json:"graph,omitempty"`       // inline graph (one "from label to" per line)
	Query      string   `json:"query"`                 // textual CXRPQ
	Mode       string   `json:"mode,omitempty"`        // eval (default) | bool | check | explain
	Semantics  string   `json:"semantics,omitempty"`   // auto (default) | bounded | log
	K          *int     `json:"k,omitempty"`           // image bound, required for semantics=bounded (k ≥ 0)
	Tuple      []string `json:"tuple,omitempty"`       // node names (check/explain)
	Limit      int      `json:"limit,omitempty"`       // rows per page (eval); 0 = one large page
	DeadlineMS int      `json:"deadline_ms,omitempty"` // evaluation budget; expiry returns partial rows with truncated
	Ranked     bool     `json:"ranked,omitempty"`      // shortest-witness-first order with costs (eval)
	Cursor     string   `json:"cursor,omitempty"`      // continue a paginated stream; excludes db/graph/query

	// Weights maps single-rune edge labels to a per-edge witness cost
	// (ranked eval only): unlisted labels cost 1, negatives clamp to 0.
	Weights map[string]int `json:"weights,omitempty"`
}

// weightFromMap compiles a request weight map into an engine.Weight. Keys
// must be single runes; nil/empty maps mean unit cost (nil Weight).
func weightFromMap(m map[string]int) (engine.Weight, error) {
	if len(m) == 0 {
		return nil, nil
	}
	w := make(map[rune]int32, len(m))
	for k, v := range m {
		r := []rune(k)
		if len(r) != 1 {
			return nil, fmt.Errorf("weights key %q must be a single edge label", k)
		}
		w[r[0]] = int32(v)
	}
	return func(label rune) int32 {
		if c, ok := w[label]; ok {
			return c
		}
		return 1
	}, nil
}

type explanationJSON struct {
	Nodes  map[string]string `json:"nodes"`            // node variable -> node name
	Words  []string          `json:"words"`            // per query edge
	Images map[string]string `json:"images,omitempty"` // string variable -> image
}

type queryResponse struct {
	Fragment     string           `json:"fragment"`
	Count        int              `json:"count"`
	Answers      [][]string       `json:"answers,omitempty"`
	Costs        []int            `json:"costs,omitempty"` // per answer, ranked streams: shortest-witness edge count
	Bool         *bool            `json:"bool,omitempty"`
	Explanation  *explanationJSON `json:"explanation,omitempty"`
	Cursor       string           `json:"cursor,omitempty"`        // more rows remain; fetch with {"cursor":...}
	Truncated    bool             `json:"truncated,omitempty"`     // cut by deadline, disconnect or shed budget
	Shed         bool             `json:"shed,omitempty"`          // degraded by the soft-saturation limiter
	RowsStreamed int64            `json:"rows_streamed,omitempty"` // rows delivered by this stream so far
	ElapsedMS    float64          `json:"elapsed_ms"`
}

type errResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errResponse{Error: err.Error()})
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	if req.Cursor != "" {
		s.handleCursorFetch(w, &req)
		return
	}
	if req.Query == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing query"))
		return
	}
	if req.Limit < 0 || req.DeadlineMS < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("limit and deadline_ms must be nonnegative"))
		return
	}

	// Resolve the database: a pooled named one (its published MVCC state —
	// no lock is taken, so the evaluation below never waits on a writer and
	// never observes a mutation mid-stream), or an inline one-off graph.
	var sess *cxrpq.Session
	var db *graph.DB
	var e *dbEntry
	switch {
	case req.DB != "" && req.Graph != "":
		writeErr(w, http.StatusBadRequest, fmt.Errorf("give either db or graph, not both"))
		return
	case req.DB != "":
		var ok bool
		e, ok = s.entry(req.DB)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown db %q", req.DB))
			return
		}
		st := e.state.Load()
		db = st.db
		var err error
		sess, err = st.session(req.Query, s.opts.sessionCap)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	case req.Graph != "":
		var err error
		db, err = graph.Parse(req.Graph)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		p, err := cxrpq.PrepareSrc(req.Query)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		sess = p.Bind(db)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing db or graph"))
		return
	}

	sem, k, err := resolveSemantics(req.Semantics, req.K)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	op := req.Mode
	if op == "" {
		op = "eval"
	}
	switch op {
	case "eval", "bool", "check", "explain":
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown mode %q", op))
		return
	}
	if (req.Limit > 0 || req.Ranked) && op != "eval" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("limit and ranked apply to mode=eval"))
		return
	}
	if len(req.Weights) > 0 && !req.Ranked {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("weights apply to ranked eval"))
		return
	}
	weight, err := weightFromMap(req.Weights)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var tuple pattern.Tuple
	if op == "check" || (op == "explain" && len(req.Tuple) > 0) {
		tuple = make(pattern.Tuple, len(req.Tuple))
		for i, name := range req.Tuple {
			id, ok := db.Lookup(name)
			if !ok {
				writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown node %q", name))
				return
			}
			tuple[i] = id
		}
	}

	start := time.Now()
	var deadline time.Time
	if req.DeadlineMS > 0 {
		deadline = start.Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	shed := r.Context().Value(shedKey{}) != nil
	if shed {
		// Admitted beyond the soft cap: bound the work and return what fits.
		if sd := start.Add(s.opts.shedBudget); deadline.IsZero() || sd.Before(deadline) {
			deadline = sd
		}
	}

	if op == "eval" && (req.Limit > 0 || req.Ranked) {
		s.streamQuery(w, r, sess, db, e, sem, k, weight, &req, deadline, shed, start)
		return
	}

	// Materialized path, still budgeted: the request context is honored
	// inside the evaluation loops, so a disconnected client stops burning
	// its in-flight slot. A truncated eval yields the sound partial set.
	bud := engine.NewBudget(r.Context(), deadline, 0)
	resp := sess.Do(cxrpq.Request{Op: op, Semantics: sem, K: k, Tuple: tuple, Budget: bud})
	truncated := false
	if resp.Err != nil {
		if !errors.Is(resp.Err, engine.ErrCanceled) {
			writeErr(w, http.StatusBadRequest, resp.Err)
			return
		}
		truncated = true
	}
	out := queryResponse{
		Fragment:  sess.Fragment(),
		Truncated: truncated,
		Shed:      shed,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	switch op {
	case "eval":
		if resp.Tuples != nil {
			out.Count = resp.Tuples.Len()
			for _, t := range resp.Tuples.Sorted() {
				row := make([]string, len(t))
				for i, v := range t {
					row[i] = db.Name(v)
				}
				out.Answers = append(out.Answers, row)
			}
		}
		out.RowsStreamed = int64(out.Count)
	case "bool", "check":
		b := resp.OK
		out.Bool = &b
		if b {
			out.Count = 1
		}
	case "explain":
		b := resp.OK
		out.Bool = &b
		if resp.Explanation != nil {
			ex := &explanationJSON{Nodes: map[string]string{}, Words: resp.Explanation.Words, Images: resp.Explanation.Images}
			for v, id := range resp.Explanation.NodeOf {
				ex.Nodes[v] = db.Name(id)
			}
			out.Explanation = ex
			out.Count = 1
		}
	}
	e.recordQuery(time.Since(start), out.Count, shed, truncated)
	writeJSON(w, http.StatusOK, out)
}

// streamQuery serves mode=eval through the pull-based cursor: the first
// row is fetched alone (that latency is the per-database time-to-first-row
// statistic), the rest of the page follows, and an unfinished stream is
// parked in the cursor registry under an opaque token — unless the request
// was admitted degraded, in which case the remainder is shed.
func (s *server) streamQuery(w http.ResponseWriter, r *http.Request, sess *cxrpq.Session, db *graph.DB,
	e *dbEntry, sem string, k int, weight engine.Weight, req *queryRequest, deadline time.Time, shed bool, start time.Time) {
	// A parked cursor outlives its opening request, and the request context
	// is canceled the moment this response is written — so only a shed
	// stream (which never parks) is bound to it. Parked cursors are bounded
	// by their deadline and the registry's idle TTL instead.
	var ctx context.Context
	if shed {
		ctx = r.Context()
	}
	cur, err := sess.Stream(cxrpq.StreamOptions{
		Semantics: sem, K: k, Ranked: req.Ranked, Weight: weight,
		Deadline: deadline, Ctx: ctx,
	})
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	lim := req.Limit
	if lim <= 0 {
		lim = 4096
	}
	rows := cur.Fetch(1)
	ttfr := time.Since(start)
	if len(rows) == 1 && lim > 1 {
		rows = append(rows, cur.Fetch(lim-1)...)
	}
	out := queryResponse{Fragment: sess.Fragment(), Shed: shed, RowsStreamed: cur.RowsStreamed()}
	serializeRows(&out, rows, db, req.Ranked)
	switch {
	case len(rows) < lim: // exhausted (or cut): the stream is done
		if err := cur.Err(); err != nil {
			cur.Close()
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		out.Truncated = cur.Truncated()
		cur.Close()
	case shed:
		// Degraded admission never parks a cursor: the remainder is shed.
		cur.Close()
		out.Truncated = true
	default:
		rec := &cursorRec{cur: cur, entry: e, db: db, rev: db.Revision(),
			fragment: sess.Fragment(), ranked: req.Ranked, limit: lim}
		tok, evicted, err := s.cursors.put(rec)
		if err != nil {
			cur.Close()
			closeAll(evicted)
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		if e != nil && e.store != nil && req.Ranked {
			// Persist the parked ranked cursor so a restart resumes it
			// (unranked order is not deterministic enough to replay).
			blob := &cursorWALBlob{Token: tok, DB: e.name, Query: req.Query,
				Semantics: sem, K: k, Limit: lim, Rows: cur.RowsStreamed(),
				Rev: rec.rev, Weights: req.Weights}
			if !deadline.IsZero() {
				blob.DeadlineMS = deadline.UnixMilli()
			}
			rec.persist = blob
			persistCursor(e, blob)
		}
		out.Cursor = tok
		// A page cut short by the deadline must say so even when the stream
		// parks: later pages inherit the flag from the cursor as well.
		out.Truncated = cur.Truncated()
		defer closeAll(evicted)
	}
	out.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	e.recordQuery(ttfr, len(rows), shed, out.Truncated)
	writeJSON(w, http.StatusOK, out)
}

// handleCursorFetch continues a parked stream: {"cursor":"...","limit":n}.
// The fetch reads the cursor's pinned snapshot — no database lock exists to
// take — and a cursor whose database has published a newer revision since
// it opened is invalidated rather than resumed across epochs.
func (s *server) handleCursorFetch(w http.ResponseWriter, req *queryRequest) {
	if req.Query != "" || req.DB != "" || req.Graph != "" || req.Mode != "" || req.Semantics != "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("a cursor request carries only cursor and limit"))
		return
	}
	if req.Limit < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("limit must be nonnegative"))
		return
	}
	rec, evicted := s.cursors.get(req.Cursor)
	defer closeAll(evicted)
	if rec == nil {
		writeErr(w, http.StatusGone, fmt.Errorf("unknown or expired cursor"))
		return
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.closed {
		writeErr(w, http.StatusGone, fmt.Errorf("unknown or expired cursor"))
		return
	}
	if rec.entry != nil && rec.entry.state.Load().rev != rec.rev {
		s.cursors.drop(rec.id)
		rec.close()
		writeErr(w, http.StatusGone, fmt.Errorf("cursor invalidated by database update"))
		return
	}
	lim := req.Limit
	if lim <= 0 {
		lim = rec.limit
	}
	start := time.Now()
	rows := rec.cur.Fetch(lim)
	out := queryResponse{Fragment: rec.fragment, RowsStreamed: rec.cur.RowsStreamed()}
	serializeRows(&out, rows, rec.db, rec.ranked)
	if len(rows) < lim { // exhausted: reclaim with the final page
		s.cursors.drop(rec.id)
		if err := rec.cur.Err(); err != nil {
			rec.close()
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		out.Truncated = rec.cur.Truncated()
		rec.close()
	} else {
		out.Cursor = rec.id
		// Every page of a cut stream carries the flag, not just the last.
		out.Truncated = rec.cur.Truncated()
		if rec.persist != nil {
			rec.persist.Rows = rec.cur.RowsStreamed()
			persistCursor(rec.entry, rec.persist)
		}
	}
	out.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	rec.entry.recordRows(len(rows))
	writeJSON(w, http.StatusOK, out)
}

func serializeRows(out *queryResponse, rows []cxrpq.Row, db *graph.DB, ranked bool) {
	out.Count = len(rows)
	for _, rr := range rows {
		row := make([]string, len(rr.Tuple))
		for i, v := range rr.Tuple {
			row[i] = db.Name(v)
		}
		out.Answers = append(out.Answers, row)
		if ranked {
			out.Costs = append(out.Costs, rr.Cost)
		}
	}
}

// resolveSemantics validates the request's semantics/k pair and maps it
// onto a Session batch-request: a k is accepted exactly when
// semantics=bounded, where any k ≥ 0 is legal (k = 0 restricts images to ε).
func resolveSemantics(semantics string, k *int) (string, int, error) {
	switch semantics {
	case "", "auto":
		if k != nil {
			return "", 0, fmt.Errorf("k requires semantics=bounded")
		}
		return "auto", 0, nil
	case "bounded":
		if k == nil || *k < 0 {
			return "", 0, fmt.Errorf("semantics=bounded requires k >= 0")
		}
		return "bounded", *k, nil
	case "log":
		if k != nil {
			return "", 0, fmt.Errorf("k requires semantics=bounded")
		}
		return "log", 0, nil
	default:
		return "", 0, fmt.Errorf("unknown semantics %q", semantics)
	}
}

type planRequest struct {
	DB    string `json:"db,omitempty"`    // named database, or
	Graph string `json:"graph,omitempty"` // inline graph
	Query string `json:"query"`           // textual CXRPQ
}

type planLabelJSON struct {
	Label  string `json:"label"`
	Edges  int    `json:"edges"`
	Srcs   int    `json:"srcs"`
	Tgts   int    `json:"tgts"`
	MaxOut int    `json:"max_out"`
	MaxIn  int    `json:"max_in"`
}

type planResponse struct {
	*cxrpq.PlanReport
	Nodes  int             `json:"nodes"`
	Edges  int             `json:"edges"`
	Labels []planLabelJSON `json:"labels"`
}

// handlePlan is the planner debug endpoint: it resolves the (database,
// query) pair exactly like /query but returns the session's physical plan
// — the cost-based join order with estimated cardinalities, plus the
// planner-v2 rewrite report ("minimized_atoms": atoms the containment pass
// deletes; "acyclic"/"free_connex"/"join_tree": the GYO classification of
// the remaining conjunct graph; "strategy": "yannakakis" when the leaf
// joins would run the semijoin program, "backtracking" otherwise) — along
// with the per-label graph statistics the estimates came from, instead of
// evaluating anything.
func (s *server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req planRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	if req.Query == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing query"))
		return
	}
	var sess *cxrpq.Session
	var db *graph.DB
	switch {
	case req.DB != "" && req.Graph != "":
		writeErr(w, http.StatusBadRequest, fmt.Errorf("give either db or graph, not both"))
		return
	case req.DB != "":
		e, ok := s.entry(req.DB)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown db %q", req.DB))
			return
		}
		st := e.state.Load()
		db = st.db
		var err error
		sess, err = st.session(req.Query, s.opts.sessionCap)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	case req.Graph != "":
		var err error
		db, err = graph.Parse(req.Graph)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		p, err := cxrpq.PrepareSrc(req.Query)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		sess = p.Bind(db)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing db or graph"))
		return
	}

	rep, err := sess.PlanReport()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	st := db.Stats()
	out := planResponse{PlanReport: rep, Nodes: st.Nodes, Edges: st.Edges}
	for _, ls := range st.BySym {
		out.Labels = append(out.Labels, planLabelJSON{
			Label: string(ls.Sym), Edges: ls.Edges, Srcs: ls.Srcs, Tgts: ls.Tgts,
			MaxOut: ls.MaxOut, MaxIn: ls.MaxIn,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

type updateRequest struct {
	DB     string `json:"db"`
	Edges  string `json:"edges,omitempty"`  // edges to add, one "from label to" per line; nodes created as needed
	Remove string `json:"remove,omitempty"` // edges to remove (must exist), same format
}

type updateResponse struct {
	DB         string   `json:"db"`
	Revision   uint64   `json:"revision"`
	Nodes      int      `json:"nodes"`
	Edges      int      `json:"edges"`
	Added      int      `json:"added"`     // net added edges of the batch
	Removed    int      `json:"removed"`   // net removed edges of the batch
	NewNodes   int      `json:"new_nodes"` // nodes interned by the batch
	NewLabels  []string `json:"new_labels,omitempty"`
	InsertOnly bool     `json:"insert_only"`
}

func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	e, ok := s.entry(req.DB)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown db %q", req.DB))
		return
	}
	if e.follower != nil {
		writeErr(w, http.StatusForbidden, fmt.Errorf("db %q is a read-only follower replica", req.DB))
		return
	}
	var delta graph.Delta
	var err error
	if delta.Add, err = graph.ParseDeltaEdges(req.Edges); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if delta.Del, err = graph.ParseDeltaEdges(req.Remove); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Apply to the writer-private live DB (readers keep evaluating on the
	// published snapshot throughout), make the batch durable, then publish:
	// snapshot + fork every pooled session through the incremental-update
	// path. The maintenance cost is paid here, at write time, never by a
	// reader. The ack is written only after the WAL fsync — the durability
	// contract — and a failed append refuses to publish (or acknowledge)
	// state the log does not hold.
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if e.walErr != nil {
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Errorf("db %q refuses writes after a WAL failure: %v", e.name, e.walErr))
		return
	}
	live := e.live.Load()
	fromRev := live.Revision()
	info, err := live.ApplyDelta(delta)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if e.store != nil {
		if err := e.store.Append(delta, fromRev, live.Revision()); err != nil {
			// The live DB is ahead of its log now; wedge the entry so the
			// divergence cannot compound, and keep serving the last durable
			// published state.
			e.walErr = err
			writeErr(w, http.StatusInternalServerError, fmt.Errorf("wal append: %v", err))
			return
		}
	}
	st := e.publish()
	resp := updateResponse{
		DB: e.name, Revision: st.rev, Nodes: st.db.NumNodes(), Edges: st.db.NumEdges(),
		Added: len(info.Added), Removed: len(info.Removed), NewNodes: info.NewNodes,
		InsertOnly: info.InsertOnly(),
	}
	for _, l := range info.NewLabels {
		resp.NewLabels = append(resp.NewLabels, string(l))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ms": float64(time.Since(s.start).Microseconds()) / 1000,
	})
}

type dbStats struct {
	Name     string `json:"name"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`
	Revision uint64 `json:"revision"`
	Sessions int    `json:"sessions"`

	// Delta-maintenance counters: which path mutations took through the
	// database's derived state and the pooled sessions' caches.
	Maint     graph.MaintStats `json:"maint"`
	SessMaint sessMaintStats   `json:"sessions_maint"`

	// Durability counters (-data-dir): WAL volume, fsync cadence,
	// checkpoints and recovery replay; Follower mirrors the tail loop of a
	// read-only replica.
	Store    *graph.StoreStats `json:"store,omitempty"`
	Follower *followerStats    `json:"follower,omitempty"`

	// Streaming telemetry: /query volume, rows delivered (first pages plus
	// cursor fetches), mean time-to-first-row, and how many evaluations
	// were shed by the soft-saturation limiter or cut by a budget.
	Queries      int64   `json:"queries"`
	RowsStreamed int64   `json:"rows_streamed"`
	TTFRAvgMS    float64 `json:"ttfr_avg_ms"`
	Shed         int64   `json:"shed"`
	Truncated    int64   `json:"truncated"`
}

// sessMaintStats aggregates cache-maintenance counters over a database's
// pooled sessions: how often deltas were applied fine-grained vs flushed,
// and how many relation-cache entries survived (retained or extended)
// rather than being recomputed from scratch.
type sessMaintStats struct {
	DeltaApplies uint64 `json:"delta_applies"`
	Retains      uint64 `json:"retains"`
	FullRebuilds uint64 `json:"full_rebuilds"`
	RelRetained  uint64 `json:"rel_retained"`
	RelExtended  uint64 `json:"rel_extended"`
}

// followerStats reports a replica's tail-loop progress: WAL records applied
// (recovery plus tailing) and checkpoint-forced reloads.
type followerStats struct {
	Replayed uint64 `json:"replayed_records"`
	Reloads  uint64 `json:"reloads"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.dbs))
	for name := range s.dbs {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	var dbs []dbStats
	for _, name := range names {
		e, ok := s.entry(name)
		if !ok {
			continue
		}
		pub := e.state.Load()
		// Sizes come from the published view; the maintenance counters live
		// on the writer's DB (atomics — safe to read without its lock).
		st := dbStats{Name: e.name, Nodes: pub.db.NumNodes(), Edges: pub.db.NumEdges(), Revision: pub.rev,
			Maint: e.live.Load().MaintStats()}
		if e.store != nil {
			ss := e.store.Stats()
			st.Store = &ss
		}
		if e.follower != nil {
			st.Follower = &followerStats{Replayed: e.follower.Replayed(), Reloads: e.follower.Reloads()}
		}
		pub.sessMu.Lock()
		st.Sessions = len(pub.sessions)
		for _, sess := range pub.sessions {
			ss := sess.Stats()
			st.SessMaint.DeltaApplies += ss.Maint.DeltaApplies
			st.SessMaint.Retains += ss.Maint.Retains
			st.SessMaint.FullRebuilds += ss.Maint.FullRebuilds
			st.SessMaint.RelRetained += ss.Rel.Retained
			st.SessMaint.RelExtended += ss.Rel.Extended
		}
		pub.sessMu.Unlock()
		e.qmu.Lock()
		st.Queries = e.qs.Queries
		st.RowsStreamed = e.qs.RowsStreamed
		if e.qs.Queries > 0 {
			st.TTFRAvgMS = float64(e.qs.TTFRTotalNS) / float64(e.qs.Queries) / 1e6
		}
		st.Shed = e.qs.Shed
		st.Truncated = e.qs.Truncated
		e.qmu.Unlock()
		dbs = append(dbs, st)
	}
	mc := xregex.MatchCacheInfo()
	writeJSON(w, http.StatusOK, map[string]any{
		"dbs":         dbs,
		"match_cache": map[string]any{"hits": mc.Hits, "misses": mc.Misses, "size": mc.Size},
		"inflight":    len(s.inflight),
		"cursors":     s.cursors.open(),
		// Sharded reachability-kernel counters: batch/level/source totals,
		// edge volume, cross-shard exchange volume and the per-shard
		// breakdown (for shard-count tuning alongside -pprof).
		"engine": engine.ReachBatchStats(),
		// Planner-v2 counters: containment checks/bails, atoms deleted by
		// minimization, Yannakakis programs run, semijoin sweeps and
		// cyclic fallbacks (process-wide, across all DBs).
		"planner": planner.Stats(),
	})
}

// parseDBFlag splits a -db flag value "name=path".
func parseDBFlag(v string) (name, path string, err error) {
	i := strings.IndexByte(v, '=')
	if i <= 0 || i == len(v)-1 {
		return "", "", fmt.Errorf("bad -db value %q, want name=path", v)
	}
	return v[:i], v[i+1:], nil
}
