package main

// Parked-cursor persistence and publish-time invalidation: a ranked cursor
// parked on a durable database must survive a kill -9 (the restarted server
// resumes pagination under the same token, exactly where it left off), a
// mutation of the database must invalidate it eagerly — on the leader's
// /update and on a follower's tail republish alike — and per-label weights
// must ride the HTTP surface end to end.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cxrpq/internal/graph"
)

// seedChain posts a path n0 -a-> n1 -a-> ... -a-> n<k> as one /update batch.
func seedChain(t *testing.T, url string, k int) {
	t.Helper()
	var lines []string
	for i := 0; i < k; i++ {
		lines = append(lines, fmt.Sprintf("n%d a n%d", i, i+1))
	}
	code, out := postJSON(t, url+"/update", `{"db":"g1","edges":"`+strings.Join(lines, `\n`)+`"}`)
	if code != http.StatusOK {
		t.Fatalf("seed: %d %v", code, out)
	}
}

func answersOf(out map[string]any) [][]string {
	var rows [][]string
	if out["answers"] == nil {
		return nil
	}
	for _, a := range out["answers"].([]any) {
		var row []string
		for _, v := range a.([]any) {
			row = append(row, v.(string))
		}
		rows = append(rows, row)
	}
	return rows
}

const rankedChainQuery = `{"db":"g1","query":"ans(x, y)\nx y : a+","ranked":true`

func TestCursorRestartResumesPagination(t *testing.T) {
	dir := t.TempDir()
	_, ts, _ := durableServer(t, dir)
	seedChain(t, ts.URL, 5) // 15 ranked pairs (i < j), cost j-i

	// The whole ranked answer list, as one page: the ground truth.
	code, full := postJSON(t, ts.URL+"/query", rankedChainQuery+`}`)
	if code != http.StatusOK || full["count"].(float64) != 15 {
		t.Fatalf("full ranked query: %d %v", code, full)
	}
	want := answersOf(full)

	// Page 1 parks a persisted cursor, page 2 advances it.
	code, p1 := postJSON(t, ts.URL+"/query", rankedChainQuery+`,"limit":5}`)
	if code != http.StatusOK || p1["cursor"] == nil {
		t.Fatalf("page 1: %d %v", code, p1)
	}
	tok := p1["cursor"].(string)
	code, p2 := postJSON(t, ts.URL+"/query", `{"cursor":"`+tok+`","limit":5}`)
	if code != http.StatusOK || p2["cursor"] != tok {
		t.Fatalf("page 2: %d %v", code, p2)
	}

	// kill -9: no graceful shutdown, no store Close. The restarted server
	// must resume the token mid-stream instead of answering 410.
	ts.Close()
	_, ts2, _ := durableServer(t, dir)
	got := append(answersOf(p1), answersOf(p2)...)
	for len(got) < len(want) {
		code, p := postJSON(t, ts2.URL+"/query", `{"cursor":"`+tok+`","limit":5}`)
		if code != http.StatusOK {
			t.Fatalf("post-restart fetch after %d rows: %d %v", len(got), code, p)
		}
		rows := answersOf(p)
		if len(rows) == 0 && p["cursor"] == nil {
			break
		}
		got = append(got, rows...)
	}
	if len(got) != len(want) {
		t.Fatalf("resumed pagination delivered %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if strings.Join(got[i], ",") != strings.Join(want[i], ",") {
			t.Fatalf("row %d: resumed pagination gave %v, full drain gave %v", i, got[i], want[i])
		}
	}
}

func TestCursorRestartAfterUpdateGives410(t *testing.T) {
	dir := t.TempDir()
	srv, ts, _ := durableServer(t, dir)
	seedChain(t, ts.URL, 5)
	code, p1 := postJSON(t, ts.URL+"/query", rankedChainQuery+`,"limit":5}`)
	if code != http.StatusOK || p1["cursor"] == nil {
		t.Fatalf("page 1: %d %v", code, p1)
	}
	tok := p1["cursor"].(string)

	// The mutation invalidates the parked cursor at publish time — the
	// registry is empty before any fetch could trip the lazy check.
	if code, out := postJSON(t, ts.URL+"/update", `{"db":"g1","edges":"n9 a n8"}`); code != http.StatusOK {
		t.Fatalf("update: %d %v", code, out)
	}
	if n := srv.cursors.open(); n != 0 {
		t.Fatalf("publish left %d parked cursors, want eager invalidation", n)
	}
	if code, _ := postJSON(t, ts.URL+"/query", `{"cursor":"`+tok+`"}`); code != http.StatusGone {
		t.Fatalf("fetch after update = %d, want 410", code)
	}

	// And the tombstone is durable: the restarted server must not resurrect
	// the cursor from its earlier WAL record.
	ts.Close()
	srv2, ts2, _ := durableServer(t, dir)
	if n := srv2.cursors.open(); n != 0 {
		t.Fatalf("restart resurrected %d invalidated cursors", n)
	}
	if code, _ := postJSON(t, ts2.URL+"/query", `{"cursor":"`+tok+`"}`); code != http.StatusGone {
		t.Fatalf("post-restart fetch of invalidated cursor = %d, want 410", code)
	}
}

// A follower's tail republish must invalidate its parked cursors exactly
// like a leader /update does: a cursor materialized before the tail loop
// replays a batch answers 410 afterwards, not rows from a stale epoch.
func TestFollowerPublishInvalidatesCursors(t *testing.T) {
	dir := t.TempDir()
	_, lts, _ := durableServer(t, dir)
	seedChain(t, lts.URL, 5)

	fo, err := graph.OpenFollower(dir)
	if err != nil {
		t.Fatal(err)
	}
	fsrv := newServer(serverOptions{maxInflight: 8, sessionCap: 16})
	fe := fsrv.addDB("g1", fo.DB())
	fe.follower = fo
	stop := make(chan struct{})
	defer close(stop)
	go fe.tail(2*time.Millisecond, stop)
	fts := httptest.NewServer(fsrv.handler())
	defer fts.Close()

	code, p1 := postJSON(t, fts.URL+"/query", rankedChainQuery+`,"limit":5}`)
	if code != http.StatusOK || p1["cursor"] == nil {
		t.Fatalf("follower page 1: %d %v", code, p1)
	}
	tok := p1["cursor"].(string)

	// Leader writes; the follower's tail loop republishes and must drop the
	// pinned cursor as it does.
	if code, out := postJSON(t, lts.URL+"/update", `{"db":"g1","edges":"n9 a n8"}`); code != http.StatusOK {
		t.Fatalf("leader update: %d %v", code, out)
	}
	deadline := time.Now().Add(5 * time.Second)
	for fsrv.cursors.open() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower republish never invalidated the parked cursor")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _ := postJSON(t, fts.URL+"/query", `{"cursor":"`+tok+`"}`); code != http.StatusGone {
		t.Fatalf("fetch after follower republish = %d, want 410", code)
	}
}

// Per-label weights ride the request into the ranked stream: costs reflect
// the weight map, and weights without ranked are rejected.
func TestQueryWeights(t *testing.T) {
	_, ts := testServer(t) // g1: u a v, u a w, v b w
	body := `{"db":"g1","query":"ans(x, y)\nx y : a|b","ranked":true,"weights":{"b":5}}`
	code, out := postJSON(t, ts.URL+"/query", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	var costs []float64
	for _, c := range out["costs"].([]any) {
		costs = append(costs, c.(float64))
	}
	if len(costs) != 3 || costs[0] != 1 || costs[1] != 1 || costs[2] != 5 {
		t.Fatalf("costs = %v, want [1 1 5] under b=5", costs)
	}

	if code, _ := postJSON(t, ts.URL+"/query", `{"db":"g1","query":"ans(x, y)\nx y : a","weights":{"a":2}}`); code != http.StatusBadRequest {
		t.Fatalf("weights without ranked = %d, want 400", code)
	}
	if code, _ := postJSON(t, ts.URL+"/query", `{"db":"g1","query":"ans(x, y)\nx y : a","ranked":true,"weights":{"ab":2}}`); code != http.StatusBadRequest {
		t.Fatalf("multi-rune weight key = %d, want 400", code)
	}
}

// A ranked cursor whose deadline expires mid-pagination serves the rows it
// had collected and flags every remaining page "truncated": the JSON must
// carry the flag end to end, so a deadline-cut ranked result can never read
// as a complete top-k.
func TestServerRankedDeadlinePageTruncated(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 500; i++ {
		for j := 0; j < 6; j++ {
			fmt.Fprintf(&sb, "n%d %c n%d\n", i, "ab"[(i+j)%2], (i*7+j*13)%500)
		}
	}
	srv := newServer(serverOptions{maxInflight: 8, sessionCap: 16})
	srv.addDB("big", graph.MustParse(sb.String()))
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// First page: the incremental ranked stream surfaces one row well within
	// the deadline and parks.
	body := `{"db":"big","query":"ans(x, z)\nx y : a+\ny z : b+","ranked":true,"limit":1,"deadline_ms":250}`
	code, p1 := postJSON(t, ts.URL+"/query", body)
	if code != http.StatusOK || p1["cursor"] == nil || p1["count"].(float64) != 1 {
		t.Fatalf("page 1: %d %v", code, p1)
	}
	tok := p1["cursor"].(string)

	// The deadline covers the cursor's lifetime: once it passes, the next
	// page must say truncated, not pretend the stream completed.
	time.Sleep(600 * time.Millisecond)
	code, p2 := postJSON(t, ts.URL+"/query", `{"cursor":"`+tok+`","limit":1048576}`)
	if code != http.StatusOK {
		t.Fatalf("page 2: %d %v", code, p2)
	}
	if p2["truncated"] != true {
		t.Fatalf("deadline-cut ranked page lost its truncated flag: %v", p2)
	}
}
