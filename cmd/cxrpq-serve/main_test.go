package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cxrpq/internal/graph"
)

func testServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	srv := newServer(serverOptions{maxInflight: 8, sessionCap: 16})
	srv.addDB("g1", graph.MustParse("u a v\nu a w\nv b w"))
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode, out
}

func TestQueryEvalNamedDB(t *testing.T) {
	srv, ts := testServer(t)
	body := `{"db":"g1","query":"ans(x, y)\nx y : a"}`
	code, out := postJSON(t, ts.URL+"/query", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	if out["count"].(float64) != 2 {
		t.Fatalf("count = %v, want 2", out["count"])
	}
	if out["fragment"] != "CRPQ" {
		t.Fatalf("fragment = %v", out["fragment"])
	}
	// The same query again must be served by the pooled session.
	code, _ = postJSON(t, ts.URL+"/query", body)
	if code != http.StatusOK {
		t.Fatal("second query failed")
	}
	e, _ := srv.entry("g1")
	st := e.state.Load()
	st.sessMu.Lock()
	n := len(st.sessions)
	st.sessMu.Unlock()
	if n != 1 {
		t.Fatalf("session pool has %d entries, want 1", n)
	}
}

func TestQueryVariableAndModes(t *testing.T) {
	_, ts := testServer(t)
	// string-variable query, Boolean mode
	code, out := postJSON(t, ts.URL+"/query",
		`{"db":"g1","query":"ans()\nu1 v1 : $x{a|b}\nu1 w1 : $x","mode":"bool"}`)
	if code != http.StatusOK || out["bool"] != true {
		t.Fatalf("bool query: %d %v", code, out)
	}
	// check mode with a tuple of node names
	code, out = postJSON(t, ts.URL+"/query",
		`{"db":"g1","query":"ans(x, y)\nx y : a","mode":"check","tuple":["u","v"]}`)
	if code != http.StatusOK || out["bool"] != true {
		t.Fatalf("check member: %d %v", code, out)
	}
	code, out = postJSON(t, ts.URL+"/query",
		`{"db":"g1","query":"ans(x, y)\nx y : a","mode":"check","tuple":["v","u"]}`)
	if code != http.StatusOK || out["bool"] != false {
		t.Fatalf("check non-member: %d %v", code, out)
	}
	// explain mode
	code, out = postJSON(t, ts.URL+"/query",
		`{"db":"g1","query":"ans()\nu1 v1 : $x{a|b}\nu1 w1 : $x","mode":"explain"}`)
	if code != http.StatusOK || out["bool"] != true || out["explanation"] == nil {
		t.Fatalf("explain: %d %v", code, out)
	}
	// bounded semantics on a general-fragment query
	code, out = postJSON(t, ts.URL+"/query",
		`{"db":"g1","query":"ans()\nu1 v1 : $x{a|b}\nv1 w1 : $x+b?","semantics":"bounded","k":2,"mode":"bool"}`)
	if code != http.StatusOK {
		t.Fatalf("bounded: %d %v", code, out)
	}
}

func TestQueryInlineGraph(t *testing.T) {
	_, ts := testServer(t)
	code, out := postJSON(t, ts.URL+"/query",
		`{"graph":"s a t","query":"ans(x, y)\nx y : a"}`)
	if code != http.StatusOK || out["count"].(float64) != 1 {
		t.Fatalf("inline graph: %d %v", code, out)
	}
	answers := out["answers"].([]any)
	row := answers[0].([]any)
	if row[0] != "s" || row[1] != "t" {
		t.Fatalf("answers = %v", answers)
	}
}

func TestQueryErrors(t *testing.T) {
	_, ts := testServer(t)
	for _, tc := range []struct {
		body string
		code int
	}{
		{`{"query":"ans()\nx y : a"}`, http.StatusBadRequest},                                    // no db/graph
		{`{"db":"nope","query":"ans()\nx y : a"}`, http.StatusNotFound},                          // unknown db
		{`{"db":"g1","query":"not a query"}`, http.StatusBadRequest},                             // parse error
		{`{"db":"g1","query":"ans()\nx y : a","mode":"zap"}`, http.StatusBadRequest},             // bad mode
		{`{"db":"g1","query":"ans()\nx y : a","semantics":"bounded"}`, http.StatusBadRequest},    // k missing
		{`{"db":"g1","query":"ans()\nx y : $x{a|b}($x)+","mode":"bool"}`, http.StatusBadRequest}, // general fragment without bounded/log
	} {
		code, out := postJSON(t, ts.URL+"/query", tc.body)
		if code != tc.code {
			t.Errorf("%s: status %d (%v), want %d", tc.body, code, out, tc.code)
		}
	}
}

func TestUpdateInvalidatesSessions(t *testing.T) {
	_, ts := testServer(t)
	q := `{"db":"g1","query":"ans(x, y)\nx y : b"}`
	code, out := postJSON(t, ts.URL+"/query", q)
	if code != http.StatusOK || out["count"].(float64) != 1 {
		t.Fatalf("before update: %d %v", code, out)
	}
	code, out = postJSON(t, ts.URL+"/update", `{"db":"g1","edges":"w b u\nu b z"}`)
	if code != http.StatusOK {
		t.Fatalf("update: %d %v", code, out)
	}
	code, out = postJSON(t, ts.URL+"/query", q)
	if code != http.StatusOK || out["count"].(float64) != 3 {
		t.Fatalf("after update: %d %v (want count 3)", code, out)
	}
}

// TestUpdateDeltaMaintainsSessions drives the incremental /update path: an
// insert-only delta must refresh the pooled sessions fine-grained (the
// retained/extended counters in /stats move, no extra full rebuild), a
// "remove" delta must flush and still serve exact answers, and invalid
// removals are rejected atomically.
func TestUpdateDeltaMaintainsSessions(t *testing.T) {
	_, ts := testServer(t)
	q := `{"db":"g1","query":"ans(x, y)\nx y : a","mode":"eval"}`
	code, out := postJSON(t, ts.URL+"/query", q)
	if code != http.StatusOK || out["count"].(float64) != 2 {
		t.Fatalf("before update: %d %v", code, out)
	}
	// A bounded-semantics query materializes atom relations in its pooled
	// session — the cache the insert-only update must maintain per entry.
	qb := `{"db":"g1","query":"ans(x, y)\nx y : $w{a|b}\ny z : $w+","semantics":"bounded","k":1,"mode":"eval"}`
	if code, out := postJSON(t, ts.URL+"/query", qb); code != http.StatusOK {
		t.Fatalf("bounded query: %d %v", code, out)
	}

	sessMaint := func() map[string]any {
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st["dbs"].([]any)[0].(map[string]any)["sessions_maint"].(map[string]any)
	}
	before := sessMaint()

	// Insert-only update over a known label: fine-grained maintenance.
	code, out = postJSON(t, ts.URL+"/update", `{"db":"g1","edges":"w a u"}`)
	if code != http.StatusOK {
		t.Fatalf("update: %d %v", code, out)
	}
	if out["insert_only"] != true || out["added"].(float64) != 1 {
		t.Fatalf("update response: %v", out)
	}
	after := sessMaint()
	if after["delta_applies"].(float64) != before["delta_applies"].(float64)+2 { // both pooled sessions
		t.Fatalf("insert-only update did not delta-maintain: %v -> %v", before, after)
	}
	if after["full_rebuilds"].(float64) != before["full_rebuilds"].(float64) {
		t.Fatalf("insert-only update flushed a session: %v -> %v", before, after)
	}
	if after["rel_retained"].(float64)+after["rel_extended"].(float64) == 0 {
		t.Fatalf("no relation entries maintained: %v", after)
	}
	code, out = postJSON(t, ts.URL+"/query", q)
	if code != http.StatusOK || out["count"].(float64) != 3 {
		t.Fatalf("after insert update: %d %v (want count 3)", code, out)
	}

	// Removal: full flush, exact answers.
	code, out = postJSON(t, ts.URL+"/update", `{"db":"g1","remove":"w a u\nu a w"}`)
	if code != http.StatusOK || out["insert_only"] != false || out["removed"].(float64) != 2 {
		t.Fatalf("remove update: %d %v", code, out)
	}
	code, out = postJSON(t, ts.URL+"/query", q)
	if code != http.StatusOK || out["count"].(float64) != 1 {
		t.Fatalf("after remove update: %d %v (want count 1)", code, out)
	}

	// Invalid removal: rejected, nothing applied.
	code, _ = postJSON(t, ts.URL+"/update", `{"db":"g1","remove":"u a nope"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("invalid removal accepted: %d", code)
	}
	code, out = postJSON(t, ts.URL+"/query", q)
	if code != http.StatusOK || out["count"].(float64) != 1 {
		t.Fatalf("state changed by rejected removal: %d %v", code, out)
	}
}

func TestInflightLimiter(t *testing.T) {
	srv, ts := testServer(t)
	// Fill the soft cap: queries are still admitted, but degraded — they
	// run under the shed budget and carry the shed marker instead of 429.
	for i := 0; i < srv.opts.maxInflight; i++ {
		srv.inflight <- struct{}{}
	}
	code, out := postJSON(t, ts.URL+"/query", `{"db":"g1","query":"ans(x, y)\nx y : a"}`)
	if code != http.StatusOK {
		t.Fatalf("soft saturation: status %d (%v), want 200", code, out)
	}
	if out["shed"] != true {
		t.Fatalf("soft saturation response not marked shed: %v", out)
	}
	// The tiny graph finishes inside the shed budget, so the rows are
	// complete and not truncated; partial-row shedding under a genuinely
	// expired budget is covered by TestQueryDeadline.
	if out["count"].(float64) != 2 {
		t.Fatalf("shed query lost rows: %v", out)
	}
	// Fill to the hard cap: now requests are refused.
	for i := srv.opts.maxInflight; i < 2*srv.opts.maxInflight; i++ {
		srv.inflight <- struct{}{}
	}
	code, out = postJSON(t, ts.URL+"/query", `{"db":"g1","query":"ans()\nx y : a"}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("hard saturation: status %d (%v), want 429", code, out)
	}
	for i := 0; i < 2*srv.opts.maxInflight; i++ {
		<-srv.inflight
	}
	code, out = postJSON(t, ts.URL+"/query", `{"db":"g1","query":"ans()\nx y : a"}`)
	if code != http.StatusOK {
		t.Fatalf("after release: status %d", code)
	}
	if out["shed"] == true {
		t.Fatalf("unloaded server still shedding: %v", out)
	}
}

// TestQueryPagination walks a result set page by page through cursor
// tokens and checks the pages concatenate to the full answer set, cursors
// are reclaimed on the final page, and updates invalidate parked cursors.
func TestQueryPagination(t *testing.T) {
	srv, ts := testServer(t)
	full := map[string]bool{}
	q := `{"db":"g1","query":"ans(x, y)\nx y : a|b","limit":1}`
	code, out := postJSON(t, ts.URL+"/query", q)
	if code != http.StatusOK {
		t.Fatalf("first page: %d %v", code, out)
	}
	pages := 1
	for {
		answers, _ := out["answers"].([]any) // final page may be empty
		for _, row := range answers {
			r := row.([]any)
			key := r[0].(string) + "->" + r[1].(string)
			if full[key] {
				t.Fatalf("row %s served twice", key)
			}
			full[key] = true
		}
		tok, ok := out["cursor"].(string)
		if !ok {
			break
		}
		code, out = postJSON(t, ts.URL+"/query", `{"cursor":"`+tok+`","limit":1}`)
		if code != http.StatusOK {
			t.Fatalf("page %d: %d %v", pages, code, out)
		}
		pages++
		if pages > 10 {
			t.Fatal("pagination did not terminate")
		}
	}
	if len(full) != 3 || pages < 3 {
		t.Fatalf("paginated %d rows over %d pages, want 3 rows over >=3 pages (%v)", len(full), pages, full)
	}
	if out["truncated"] == true {
		t.Fatalf("exhausted stream reported truncated: %v", out)
	}
	if srv.cursors.open() != 0 {
		t.Fatalf("%d cursors leaked after exhaustion", srv.cursors.open())
	}

	// A parked cursor is invalidated by an update of its database.
	code, out = postJSON(t, ts.URL+"/query", q)
	if code != http.StatusOK {
		t.Fatalf("reopen: %d %v", code, out)
	}
	tok := out["cursor"].(string)
	if code, _ = postJSON(t, ts.URL+"/update", `{"db":"g1","edges":"z a z"}`); code != http.StatusOK {
		t.Fatalf("update: %d", code)
	}
	code, out = postJSON(t, ts.URL+"/query", `{"cursor":"`+tok+`"}`)
	if code != http.StatusGone {
		t.Fatalf("stale cursor: %d %v, want 410", code, out)
	}
	// And a bogus token is refused outright.
	code, _ = postJSON(t, ts.URL+"/query", `{"cursor":"beefbeef"}`)
	if code != http.StatusGone {
		t.Fatalf("bogus cursor: %d, want 410", code)
	}
}

// TestQueryRanked asks for shortest-witness-first order: costs come back
// nondecreasing, one per answer.
func TestQueryRanked(t *testing.T) {
	_, ts := testServer(t)
	code, out := postJSON(t, ts.URL+"/query",
		`{"db":"g1","query":"ans(x, y)\nx y : a b|a","ranked":true}`)
	if code != http.StatusOK {
		t.Fatalf("ranked: %d %v", code, out)
	}
	costs := out["costs"].([]any)
	if len(costs) != len(out["answers"].([]any)) || len(costs) == 0 {
		t.Fatalf("costs/answers mismatch: %v", out)
	}
	prev := -1.0
	for _, c := range costs {
		if c.(float64) < prev {
			t.Fatalf("ranked costs decrease: %v", costs)
		}
		prev = c.(float64)
	}
}

// TestQueryDeadline: an already-expired deadline yields 200 with the rows
// found so far (possibly none) and truncated set — not an error.
func TestQueryDeadline(t *testing.T) {
	_, ts := testServer(t)
	code, out := postJSON(t, ts.URL+"/query",
		`{"db":"g1","query":"ans(x, y)\nx y : a","deadline_ms":1,"limit":10}`)
	if code != http.StatusOK {
		t.Fatalf("deadline query: %d %v", code, out)
	}
	// With a 1ms budget on a tiny graph either outcome is legal, but a
	// short page without a cursor must be flagged truncated or complete.
	if out["cursor"] != nil {
		t.Fatalf("deadline query parked a cursor: %v", out)
	}
	if out["truncated"] != true && out["count"].(float64) != 2 {
		t.Fatalf("deadline query neither complete nor truncated: %v", out)
	}
}

func TestHealthzAndStats(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()
	postJSON(t, ts.URL+"/query", `{"db":"g1","query":"ans()\nx y : a","mode":"bool"}`)
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %v %v", err, resp)
	}
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	dbs := st["dbs"].([]any)
	if len(dbs) != 1 || dbs[0].(map[string]any)["name"] != "g1" {
		t.Fatalf("stats dbs = %v", dbs)
	}
}

func TestPlanEndpoint(t *testing.T) {
	_, ts := testServer(t)
	// g1 has two a-edges from u and one b-edge from v: the selective b atom
	// must be placed before the a atom by the cost-based order.
	code, out := postJSON(t, ts.URL+"/plan", `{"db":"g1","query":"ans(x, z)\nx y : a\ny z : b"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	if out["fragment"] != "CRPQ" || out["cost_based"] != true {
		t.Fatalf("plan header = %v", out)
	}
	steps := out["steps"].([]any)
	if len(steps) != 2 {
		t.Fatalf("steps = %v", steps)
	}
	first := steps[0].(map[string]any)
	if first["label"] != "b" || first["mode"] != "scan" {
		t.Fatalf("first step = %v", first)
	}
	second := steps[1].(map[string]any)
	if second["label"] != "a" || second["mode"] != "expand-rev" {
		t.Fatalf("second step = %v", second)
	}
	labels := out["labels"].([]any)
	if len(labels) != 2 {
		t.Fatalf("labels = %v", labels)
	}
	// Inline graphs work too; unknown db and missing query are rejected.
	code, _ = postJSON(t, ts.URL+"/plan", `{"graph":"u a v","query":"ans(x, y)\nx y : a"}`)
	if code != http.StatusOK {
		t.Fatalf("inline plan status %d", code)
	}
	code, _ = postJSON(t, ts.URL+"/plan", `{"db":"nope","query":"ans()\nx y : a"}`)
	if code != http.StatusNotFound {
		t.Fatalf("unknown db status %d", code)
	}
	code, _ = postJSON(t, ts.URL+"/plan", `{"db":"g1"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("missing query status %d", code)
	}
}
