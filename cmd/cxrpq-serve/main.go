// Command cxrpq-serve is a concurrent CXRPQ evaluation server over the
// prepared-query subsystem (cxrpq.Prepare / Plan.Bind / Session): an
// HTTP/JSON front-end with MVCC snapshot reads (queries and parked cursors
// run against an immutable published graph.Snapshot view with its forked
// session pool, so reads never block on /update), durable writes behind
// -data-dir (write-ahead log + checkpoints, fsync before ack, crash
// recovery on startup), incremental cache maintenance at publish time
// (insert-only /update deltas retain or frontier-extend the pooled
// sessions' caches instead of flushing them; see the server.go comment
// block), pull-based streaming evaluation with pagination, deadlines and
// ranked (shortest-witness-first) order, and a two-tier in-flight limiter
// that degrades to partial answers before it rejects with 429.
//
// Usage:
//
//	cxrpq-serve [-addr :8080] [-db name=path]... [-data-dir dir] [-follower]
//	            [-wal-sync-every 1] [-checkpoint-bytes 4194304] [-follower-poll-ms 100]
//	            [-inflight 64] [-shed-ms 100] [-sessions 128] [-shards 0] [-pprof]
//
// Databases are the textual graph format (one "from label to" triple per
// line); requests may alternatively carry an inline graph. With -data-dir,
// each named database persists under <dir>/<name> (checkpoint.graph +
// wal.log): a fresh directory is seeded from the -db file and checkpointed,
// an existing one is recovered by checkpoint load + WAL replay and the -db
// path is ignored. /update acknowledges only after the WAL record is
// fsynced, so a kill -9 loses no acknowledged batch. -follower serves the
// store directories read-only instead: every store under -data-dir is
// recovered and then tailed (leader appends surface within the poll
// interval), and /update is refused with 403. Quickstart:
//
//	cxrpq-serve -addr :8080 &
//	curl -s localhost:8080/query -d '{
//	  "graph": "u a v\nu a w",
//	  "query": "ans()\nu1 v1 : $x{a|b}\nu1 w1 : $x",
//	  "mode": "bool"
//	}'
//
// Paginated, deadline-bounded streaming against a named database:
//
//	curl -s localhost:8080/query -d '{"db":"g1","query":"ans(x, y)\nx y : a+","limit":100,"deadline_ms":50}'
//	# -> {"answers":[...100 rows...],"cursor":"<token>", ...}  (or "truncated":true when the 50ms ran out)
//	curl -s localhost:8080/query -d '{"cursor":"<token>","limit":100}'
//
// See internal/README.md for the endpoint reference and the server.go
// comment block for cursor, deadline, shedding and durability semantics.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"cxrpq/internal/engine"
	"cxrpq/internal/graph"
)

type dbFlags []string

func (d *dbFlags) String() string     { return fmt.Sprint([]string(*d)) }
func (d *dbFlags) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	inflight := flag.Int("inflight", 64, "soft in-flight cap: beyond it queries run degraded under the shed budget; beyond 2x requests get 429")
	shedMS := flag.Int("shed-ms", 100, "eval budget (ms) for requests admitted beyond the soft in-flight cap")
	sessions := flag.Int("sessions", 128, "pooled prepared sessions per database")
	shards := flag.Int("shards", 0, "reachability-kernel shard count (0 = GOMAXPROCS; normalized to a power of two)")
	pprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ for profile-driven shard tuning")
	dataDir := flag.String("data-dir", "", "durability root: each named db persists under <dir>/<name> as WAL + checkpoints, recovered on startup")
	follower := flag.Bool("follower", false, "serve the stores under -data-dir read-only, tailing each WAL; /update is refused")
	walSync := flag.Int("wal-sync-every", 1, "fsync cadence in WAL appends: 1 syncs before every ack (crash-safe), n>1 group-commits (bounded loss), negative never syncs")
	ckptBytes := flag.Int64("checkpoint-bytes", 4<<20, "write a checkpoint and reset the WAL when it outgrows this size; negative disables")
	pollMS := flag.Int("follower-poll-ms", 100, "WAL poll interval (ms) in follower mode")
	var dbs dbFlags
	flag.Var(&dbs, "db", "named database as name=path (repeatable); with -data-dir the path only seeds a fresh store")
	flag.Parse()

	if *shards != 0 {
		engine.SetShards(*shards)
	}
	srv := newServer(serverOptions{
		maxInflight: *inflight, sessionCap: *sessions, pprof: *pprof,
		shedBudget: time.Duration(*shedMS) * time.Millisecond,
	})

	if *follower {
		if *dataDir == "" {
			log.Fatal("-follower requires -data-dir")
		}
		names, err := storeNames(*dataDir)
		if err != nil {
			log.Fatal(err)
		}
		stop := make(chan struct{}) // closed never: followers tail for the process lifetime
		for _, name := range names {
			fo, err := graph.OpenFollower(filepath.Join(*dataDir, name))
			if err != nil {
				log.Fatalf("recover follower %s: %v", name, err)
			}
			e := srv.addDB(name, fo.DB())
			e.follower = fo
			go e.tail(time.Duration(*pollMS)*time.Millisecond, stop)
			log.Printf("tailing db %q: %d nodes, %d edges at revision %d (replayed %d records)",
				name, fo.DB().NumNodes(), fo.DB().NumEdges(), fo.DB().Revision(), fo.Replayed())
		}
		log.Printf("cxrpq-serve follower listening on %s (%d dbs)", *addr, len(names))
		log.Fatal(http.ListenAndServe(*addr, srv.handler()))
	}

	for _, v := range dbs {
		name, path, err := parseDBFlag(v)
		if err != nil {
			log.Fatal(err)
		}
		if *dataDir != "" {
			st, err := graph.OpenStore(filepath.Join(*dataDir, name),
				graph.StoreOptions{SyncEvery: *walSync, CheckpointBytes: *ckptBytes})
			if err != nil {
				log.Fatalf("open store %s: %v", name, err)
			}
			db := st.DB()
			if db.Revision() == 0 && db.NumNodes() == 0 {
				// Fresh store: seed it from the -db file as one batch and
				// checkpoint, so durability covers the seed from revision 1.
				if err := seedStore(st, path); err != nil {
					log.Fatalf("seed %s from %s: %v", name, path, err)
				}
				log.Printf("seeded db %q from %s: %d nodes, %d edges", name, path, db.NumNodes(), db.NumEdges())
			} else {
				log.Printf("recovered db %q: %d nodes, %d edges at revision %d (replayed %d records)",
					name, db.NumNodes(), db.NumEdges(), db.Revision(), st.Stats().ReplayedRecords)
			}
			e := srv.addDB(name, db)
			e.store = st
			srv.recoverCursors(e)
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			log.Fatalf("open %s: %v", path, err)
		}
		db, err := graph.Read(f)
		f.Close()
		if err != nil {
			log.Fatalf("parse %s: %v", path, err)
		}
		srv.addDB(name, db)
		log.Printf("loaded db %q: %d nodes, %d edges", name, db.NumNodes(), db.NumEdges())
	}

	log.Printf("cxrpq-serve listening on %s (%d dbs, inflight=%d)", *addr, len(dbs), *inflight)
	log.Fatal(http.ListenAndServe(*addr, srv.handler()))
}

// seedStore loads a textual graph file into a store's empty database as one
// insert batch and writes the first checkpoint.
func seedStore(st *graph.Store, path string) error {
	text, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	adds, err := graph.ParseDeltaEdges(string(text))
	if err != nil {
		return err
	}
	if _, err := st.DB().ApplyDelta(graph.Delta{Add: adds}); err != nil {
		return err
	}
	return st.Checkpoint()
}

// storeNames lists the store directories under a durability root.
func storeNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		for _, f := range []string{"checkpoint.graph", "wal.log"} {
			if _, err := os.Stat(filepath.Join(dir, ent.Name(), f)); err == nil {
				names = append(names, ent.Name())
				break
			}
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no store directories under %s", dir)
	}
	return names, nil
}
