// Command cxrpq-serve is a concurrent CXRPQ evaluation server over the
// prepared-query subsystem (cxrpq.Prepare / Plan.Bind / Session): an
// HTTP/JSON front-end with a per-database session pool, incremental cache
// maintenance on database updates (insert-only /update deltas retain or
// frontier-extend the pooled sessions' caches instead of flushing them;
// see the server.go comment block), pull-based streaming evaluation with
// pagination, deadlines and ranked (shortest-witness-first) order, and a
// two-tier in-flight limiter that degrades to partial answers before it
// rejects with 429.
//
// Usage:
//
//	cxrpq-serve [-addr :8080] [-db name=path]... [-inflight 64] [-shed-ms 100] [-sessions 128] [-shards 0] [-pprof]
//
// Databases are the textual graph format (one "from label to" triple per
// line); requests may alternatively carry an inline graph. Quickstart:
//
//	cxrpq-serve -addr :8080 &
//	curl -s localhost:8080/query -d '{
//	  "graph": "u a v\nu a w",
//	  "query": "ans()\nu1 v1 : $x{a|b}\nu1 w1 : $x",
//	  "mode": "bool"
//	}'
//
// Paginated, deadline-bounded streaming against a named database:
//
//	curl -s localhost:8080/query -d '{"db":"g1","query":"ans(x, y)\nx y : a+","limit":100,"deadline_ms":50}'
//	# -> {"answers":[...100 rows...],"cursor":"<token>", ...}  (or "truncated":true when the 50ms ran out)
//	curl -s localhost:8080/query -d '{"cursor":"<token>","limit":100}'
//
// See internal/README.md for the endpoint reference and the server.go
// comment block for cursor, deadline and shedding semantics.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"cxrpq/internal/engine"
	"cxrpq/internal/graph"
)

type dbFlags []string

func (d *dbFlags) String() string     { return fmt.Sprint([]string(*d)) }
func (d *dbFlags) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	inflight := flag.Int("inflight", 64, "soft in-flight cap: beyond it queries run degraded under the shed budget; beyond 2x requests get 429")
	shedMS := flag.Int("shed-ms", 100, "eval budget (ms) for requests admitted beyond the soft in-flight cap")
	sessions := flag.Int("sessions", 128, "pooled prepared sessions per database")
	shards := flag.Int("shards", 0, "reachability-kernel shard count (0 = GOMAXPROCS; normalized to a power of two)")
	pprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ for profile-driven shard tuning")
	var dbs dbFlags
	flag.Var(&dbs, "db", "named database as name=path (repeatable)")
	flag.Parse()

	if *shards != 0 {
		engine.SetShards(*shards)
	}
	srv := newServer(serverOptions{
		maxInflight: *inflight, sessionCap: *sessions, pprof: *pprof,
		shedBudget: time.Duration(*shedMS) * time.Millisecond,
	})
	for _, v := range dbs {
		name, path, err := parseDBFlag(v)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Open(path)
		if err != nil {
			log.Fatalf("open %s: %v", path, err)
		}
		db, err := graph.Read(f)
		f.Close()
		if err != nil {
			log.Fatalf("parse %s: %v", path, err)
		}
		srv.addDB(name, db)
		log.Printf("loaded db %q: %d nodes, %d edges", name, db.NumNodes(), db.NumEdges())
	}

	log.Printf("cxrpq-serve listening on %s (%d dbs, inflight=%d)", *addr, len(dbs), *inflight)
	log.Fatal(http.ListenAndServe(*addr, srv.handler()))
}
