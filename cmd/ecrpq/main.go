// Command ecrpq evaluates an ECRPQ (CRPQ plus regular relations) on a graph
// database.
//
// Usage:
//
//	ecrpq -graph db.txt -query q.txt [-witness]
//
// The query format extends the CXRPQ pattern format with relation lines:
//
//	ans(x, y)
//	x y : (ab)+
//	u v : .*
//	rel equality 0 1
//	rel equal-length 0 1
//	rel prefix 0 1
//	rel hamming:2 0 1
package main

import (
	"flag"
	"fmt"
	"os"

	"cxrpq/internal/ecrpq"
	"cxrpq/internal/graph"
)

func main() {
	graphPath := flag.String("graph", "", "path to the graph database file")
	queryPath := flag.String("query", "", "path to the query file")
	witness := flag.Bool("witness", false, "print one matching morphism with matching words")
	flag.Parse()
	if *graphPath == "" || *queryPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*graphPath, *queryPath, *witness); err != nil {
		fmt.Fprintln(os.Stderr, "ecrpq:", err)
		os.Exit(1)
	}
}

func run(graphPath, queryPath string, witness bool) error {
	gf, err := os.Open(graphPath)
	if err != nil {
		return err
	}
	defer gf.Close()
	db, err := graph.Read(gf)
	if err != nil {
		return err
	}
	qb, err := os.ReadFile(queryPath)
	if err != nil {
		return err
	}
	q, err := ecrpq.ParseQuery(string(qb), db.Alphabet())
	if err != nil {
		return err
	}
	kind := "ECRPQ"
	if q.IsCRPQ() {
		kind = "CRPQ"
	} else if q.IsER() {
		kind = "ECRPQ^er"
	}
	fmt.Printf("class: %s  |q|=%d  |D|=%d\n", kind, q.Size(), db.Size())

	if witness {
		w, ok, err := ecrpq.FindWitness(q, db, nil)
		if err != nil {
			return err
		}
		if !ok {
			fmt.Println("no match")
			return nil
		}
		fmt.Println("witness:")
		for v, n := range w.NodeOf {
			fmt.Printf("  node %s = %s\n", v, db.Name(n))
		}
		for i, word := range w.Words {
			fmt.Printf("  edge %d word = %q\n", i, word)
		}
		return nil
	}

	res, err := ecrpq.Eval(q, db)
	if err != nil {
		return err
	}
	if q.Pattern.IsBoolean() {
		fmt.Println("D |= q:", res.Len() > 0)
		return nil
	}
	fmt.Printf("%d answer tuple(s):\n", res.Len())
	for _, t := range res.Sorted() {
		for i, v := range t {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(db.Name(v))
		}
		fmt.Println()
	}
	return nil
}
