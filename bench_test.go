package repro

// One benchmark per experiment in the DESIGN.md index (E1–E18), plus
// engine micro-benchmarks. Each experiment benchmark runs the exact
// workload that regenerates the corresponding paper artefact; the
// EXPERIMENTS.md tables were produced from the same code via cmd/cxrpq-exp.

import (
	"fmt"
	"os"
	"testing"

	"cxrpq/internal/automata"
	"cxrpq/internal/crpq"
	"cxrpq/internal/cxrpq"
	"cxrpq/internal/ecrpq"
	"cxrpq/internal/engine"
	"cxrpq/internal/exp"
	"cxrpq/internal/graph"
	"cxrpq/internal/pattern"
	"cxrpq/internal/planner"
	"cxrpq/internal/reductions"
	"cxrpq/internal/separations"
	"cxrpq/internal/workload"
	"cxrpq/internal/xregex"
)

func benchTable(b *testing.B, f func(int) *exp.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t := f(1)
		if t.Err != nil {
			b.Fatal(t.Err)
		}
	}
}

func BenchmarkE01Figure1(b *testing.B)       { benchTable(b, exp.E01Figure1) }
func BenchmarkE02Figure2(b *testing.B)       { benchTable(b, exp.E02Figure2) }
func BenchmarkE03Theorem1(b *testing.B)      { benchTable(b, exp.E03Theorem1) }
func BenchmarkE04Theorem3(b *testing.B)      { benchTable(b, exp.E04Theorem3) }
func BenchmarkE05NormalForm(b *testing.B)    { benchTable(b, exp.E05NormalForm) }
func BenchmarkE06VsfEval(b *testing.B)       { benchTable(b, exp.E06VsfEval) }
func BenchmarkE07VsfFlat(b *testing.B)       { benchTable(b, exp.E07VsfFlat) }
func BenchmarkE08BoundedEval(b *testing.B)   { benchTable(b, exp.E08BoundedEval) }
func BenchmarkE09HittingSet(b *testing.B)    { benchTable(b, exp.E09HittingSet) }
func BenchmarkE10LogBounded(b *testing.B)    { benchTable(b, exp.E10LogBounded) }
func BenchmarkE11Figure5(b *testing.B)       { benchTable(b, exp.E11Figure5) }
func BenchmarkE12Separations(b *testing.B)   { benchTable(b, exp.E12Separations) }
func BenchmarkE13Fig7(b *testing.B)          { benchTable(b, exp.E13Fig7) }
func BenchmarkE14Lemma12(b *testing.B)       { benchTable(b, exp.E14Lemma12) }
func BenchmarkE15Lemma13(b *testing.B)       { benchTable(b, exp.E15Lemma13) }
func BenchmarkE16Lemma14(b *testing.B)       { benchTable(b, exp.E16Lemma14) }
func BenchmarkE17Ablations(b *testing.B)     { benchTable(b, exp.E17Ablations) }
func BenchmarkE18PathSemantics(b *testing.B) { benchTable(b, exp.E18PathSemantics) }

// --- engine micro-benchmarks ---

func BenchmarkCRPQEval(b *testing.B) {
	db := workload.Layered(9, 12, 5, "abc")
	q := crpq.MustParse("ans(x, y)\nx m : a(b|c)*\nm y : c+")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Eval(db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEqualityProduct(b *testing.B) {
	db := workload.Random(17, 12, 30, "ab")
	q := cxrpq.MustParse("ans(s, t, s2, t2)\ns t : $x{(a|b)(a|b)}\ns2 t2 : $x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cxrpq.EvalSimple(q, db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEqualLengthRelation(b *testing.B) {
	q := separations.QAnBn()
	db := separations.DnMPaths(8, 8, 'b')
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ecrpq.EvalBool(q, db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVsfEval(b *testing.B) {
	db := workload.Layered(9, 8, 4, "abc")
	q := cxrpq.MustParse("ans(v1, v2)\nv1 v2 : $x{aa|b}\nv2 v3 : c*\nv3 v1 : $x|c")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cxrpq.EvalVsf(q, db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBoundedEval(b *testing.B) {
	db := workload.Layered(13, 6, 3, "abc")
	q := cxrpq.MustParse("ans(s, t)\ns t : $x{(a|b)+}c\nt s : $x+|b")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cxrpq.EvalBounded(q, db, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalBounded exercises the prefix-incremental bounded engine on a
// three-atom query whose variables spread across edges, so atoms become
// determined (and prune) at different enumeration depths and the relation
// cache is shared across mappings.
func BenchmarkEvalBounded(b *testing.B) {
	db := workload.Random(19, 14, 40, "abc")
	q := cxrpq.MustParse("ans(s, t)\ns m : $x{(a|b)+}\nm t : $y{a|c}b?\nt s : ($x|$y)c*")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cxrpq.EvalBounded(q, db, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9HittingSet runs the Theorem 7 reduction end-to-end on the
// hardest scale-1 instance (10 string variables under CXRPQ^≤1 semantics) —
// the suite's former perf cliff and the headline workload of the bounded
// engine.
func BenchmarkE9HittingSet(b *testing.B) {
	h := &reductions.HittingSetInstance{N: 3, Sets: [][]int{{0}, {2}}, K: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := h.SolveViaReduction()
		if err != nil {
			b.Fatal(err)
		}
		if !got {
			b.Fatal("instance has a hitting set")
		}
	}
}

func BenchmarkNormalForm(b *testing.B) {
	c := cxrpq.CXRE{
		xregex.MustParse("$x{a*$y{b*}a$z}|($x{b*}($z|$y{c*}))"),
		xregex.MustParse("(a*|$x)$z{$y(a|b)}"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cxrpq.NormalForm(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXregexMatch(b *testing.B) {
	n := xregex.MustParse("a*$x1{a*$x2{(a|b)*}b*a*}$x2*(a|b)*$x1")
	w := "aaaa" + "baba" + "ababab" + "bababa" + "a"
	sigma := []rune("ab")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !xregex.MatchBool(n, w, sigma) {
			b.Fatal("should match")
		}
	}
}

// --- ablation benchmarks (design choices called out in DESIGN.md) ---

// Ablation: EvalBounded's candidate pruning (path labels + definition-body
// filters) vs the literal Theorem 6 blind guess over (Σ^≤k)^n.
func BenchmarkAblationBoundedPruned(b *testing.B) {
	db := workload.Random(13, 6, 18, "abc")
	q := cxrpq.MustParse("ans(s, t)\ns t : $x{(a|b)+}c\nt s : $x+|b")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cxrpq.EvalBounded(q, db, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBoundedNaive(b *testing.B) {
	db := workload.Random(13, 6, 18, "abc")
	q := cxrpq.MustParse("ans(s, t)\ns t : $x{(a|b)+}c\nt s : $x+|b")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cxrpq.EvalBoundedNaive(q, db, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: specialized lock-step equality product vs driving the generic
// ⊥-padded relation engine with an explicit equality NFA.
func BenchmarkAblationEqualitySpecialized(b *testing.B) {
	db := workload.Random(17, 10, 24, "ab")
	q := &ecrpq.Query{
		Pattern: pattern.MustParseQuery("ans(x1, y1, x2, y2)\nx1 y1 : (a|b)+\nx2 y2 : (a|b)+"),
		Groups:  []ecrpq.Group{{Edges: []int{0, 1}, Rel: &ecrpq.Equality{N: 2}}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ecrpq.Eval(q, db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEqualityGenericNFA(b *testing.B) {
	db := workload.Random(17, 10, 24, "ab")
	q := &ecrpq.Query{
		Pattern: pattern.MustParseQuery("ans(x1, y1, x2, y2)\nx1 y1 : (a|b)+\nx2 y2 : (a|b)+"),
		Groups:  []ecrpq.Group{{Edges: []int{0, 1}, Rel: ecrpq.EqualityNFA(2, []rune("ab"))}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ecrpq.Eval(q, db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegexCompile(b *testing.B) {
	n := xregex.MustParse("a(b|c)*([^a]|bc)+d?")
	sigma := []rune("abcd")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xregex.Compile(n, sigma); err != nil {
			b.Fatal(err)
		}
	}
}

// --- engine core micro-benchmarks ---

// BenchmarkEngineReach measures the integer-interned product-reachability
// core on a mid-sized random graph (single source per iteration).
func BenchmarkEngineReach(b *testing.B) {
	db := workload.Random(7, 2000, 8000, "abc")
	ix := db.Index()
	m := xregex.MustCompile(xregex.MustParse("a(b|c)*(a|b)+"), []rune("abc"))
	c := automata.NewSubsetCache(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Reach(ix, c, i%db.NumNodes(), true)
	}
}

// BenchmarkEngineReachAll measures the parallel all-sources fan-out.
func BenchmarkEngineReachAll(b *testing.B) {
	db := workload.Random(7, 2000, 8000, "abc")
	ix := db.Index()
	m := xregex.MustCompile(xregex.MustParse("a(b|c)*(a|b)+"), []rune("abc"))
	srcs := make([]int, db.NumNodes())
	for i := range srcs {
		srcs[i] = i
	}
	c := automata.NewSubsetCache(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.ReachAll(ix, c, srcs, true)
	}
}

// BenchmarkReachBatch measures the sharded multi-source kernel (PR 6) on
// the scaled E22 gMark-style workload against the per-source ReachAll fan:
// "reachall" is the historical baseline (one BFS per source, parallelism
// from Fan), "batch/x1" is MS-BFS source batching alone (single shard,
// inline), and "batch/xN" adds the frontier-exchange sharding at the
// effective shard count (forced to ≥4 so the exchange machinery is
// exercised even on single-core runners). The acceptance floor for PR 6 is
// batch ≥ 2x over reachall — an algorithmic win (64 sources share each
// product-edge sweep), so it holds at any GOMAXPROCS.
func BenchmarkReachBatch(b *testing.B) {
	db := workload.GMark(7, 2400)
	ix := db.Index()
	m := xregex.MustCompile(xregex.MustParse("a(a|b)*"), db.Alphabet())
	srcs := make([]int, db.NumNodes())
	for i := range srcs {
		srcs[i] = i
	}
	shards := engine.Shards()
	if shards < 4 {
		shards = 4
	}
	b.Run("reachall", func(b *testing.B) {
		c := automata.NewSubsetCache(m)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			engine.ReachAll(ix, c, srcs, true)
		}
	})
	b.Run("batch/x1", func(b *testing.B) {
		c := automata.NewSubsetCache(m)
		part := db.Partition(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			engine.ReachBatch(ix, part, c, srcs, true)
		}
	})
	b.Run(fmt.Sprintf("batch/x%d", shards), func(b *testing.B) {
		c := automata.NewSubsetCache(m)
		part := db.Partition(shards)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			engine.ReachBatch(ix, part, c, srcs, true)
		}
	})
}

func BenchmarkE22ShardedReach(b *testing.B) { benchTable(b, exp.E22ShardedReach) }

// BenchmarkStreamFirstRow measures the streaming any-k layer (PR 7) on the
// E23 high-output gMark-style workload: "first" pulls a single row through
// Session.Stream on a session-cold cache (the time-to-first-row fast path —
// lazy chunked source sweeps compute only what one row needs), "drain"
// pulls the entire relation page by page, and "eval" materializes it with
// Session.Eval. The acceptance floor for PR 7 is first ≥ 10x faster than
// eval with drain within 1.2x of eval (see E23's metrics in
// BENCH_engine.json for recorded ratios).
func BenchmarkStreamFirstRow(b *testing.B) {
	db := workload.GMark(7, 1200)
	db.Index() // shared state: warm outside the timings
	plan := cxrpq.MustPrepare(cxrpq.MustParse("ans(x, y)\nx y : a(a|b)*"))
	b.Run("first", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cur, err := plan.Bind(db).Stream(cxrpq.StreamOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if rows := cur.Fetch(1); len(rows) != 1 {
				b.Fatal("no first row")
			}
			cur.Close()
		}
	})
	b.Run("drain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cur, err := plan.Bind(db).Stream(cxrpq.StreamOptions{})
			if err != nil {
				b.Fatal(err)
			}
			for {
				if page := cur.Fetch(4096); len(page) < 4096 {
					break
				}
			}
			if err := cur.Err(); err != nil {
				b.Fatal(err)
			}
			cur.Close()
		}
	})
	b.Run("eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plan.Bind(db).Eval(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE23TimeToFirstRow(b *testing.B) { benchTable(b, exp.E23TimeToFirstRow) }

// BenchmarkSnapshotReadsUnderWrites runs the E24 write-storm comparison
// (PR 8): read-latency p50/p99 for a global-lock server discipline versus
// MVCC snapshot publishes over the identical mutation stream, plus the
// stalled-read probe (a read issued while the writer sits inside its
// critical section) and WAL recovery time per megabyte. The acceptance
// floor for PR 8 is p50_speedup ≥ 2x with the MVCC stalled read not
// waiting out the writer's stall (see E24's metrics in BENCH_engine.json).
func BenchmarkSnapshotReadsUnderWrites(b *testing.B) {
	benchTable(b, exp.E24SnapshotReadsUnderWrites)
}

// BenchmarkPreparedReuse measures the prepared-query subsystem on the
// E2/E6/E9 workloads: "oneshot" re-prepares and re-derives everything per
// iteration, "prepared" binds a Session once and re-evaluates through its
// caches. The acceptance floor for PR 3 is prepared ≥ 1.5x faster on every
// workload (see E19 in BENCH_engine.json for the recorded ratios).
func BenchmarkPreparedReuse(b *testing.B) {
	items, err := exp.PreparedReuseItems(1)
	if err != nil {
		b.Fatal(err)
	}
	for _, it := range items {
		b.Run(it.Name+"/oneshot", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := it.OneShot(it.Query, it.DB); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(it.Name+"/prepared", func(b *testing.B) {
			sess := cxrpq.MustPrepare(it.Query).Bind(it.DB)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := it.Session(sess); err != nil {
					b.Fatal(err)
				}
			}
		})
		// Result cache disabled: isolates the structural reuse (plan +
		// relation/feasibility caches), so a regression there cannot hide
		// behind whole-result cache hits.
		b.Run(it.Name+"/prepared-norc", func(b *testing.B) {
			sess := cxrpq.MustPrepare(it.Query).BindOpts(it.DB, cxrpq.SessionOptions{ResultCacheCap: -1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := it.Session(sess); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE19PreparedReuse(b *testing.B) { benchTable(b, exp.E19PreparedReuse) }

// BenchmarkApplyDelta measures the incremental-update subsystem (PR 5) on
// the E21 MutationStream items: one iteration replays the whole delta
// stream against a warmed session, re-running the item's operation after
// every delta. "incremental" routes deltas through Session.ApplyDelta
// (fine-grained cache maintenance), "rebuild" applies the delta and forces
// the historical whole-epoch flush with Invalidate. Setup (graph build,
// session warm-up) is excluded per iteration. The acceptance floor for
// PR 5 is incremental ≥ 2x faster in aggregate (see E21's metrics in
// BENCH_engine.json for recorded ratios).
func BenchmarkApplyDelta(b *testing.B) {
	for _, it := range exp.IncrementalUpdateItems(1) {
		run := func(name string, apply func(*cxrpq.Session, graph.Delta) error) {
			b.Run(it.Name+"/"+name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					sess, deltas, err := exp.SetupMutationStream(it)
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					for step, delta := range deltas {
						if err := apply(sess, delta); err != nil {
							b.Fatal(err)
						}
						if _, err := it.Do(sess, step); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
		run("rebuild", func(sess *cxrpq.Session, delta graph.Delta) error {
			if _, err := sess.DB().ApplyDelta(delta); err != nil {
				return err
			}
			sess.Invalidate()
			return nil
		})
		run("incremental", func(sess *cxrpq.Session, delta graph.Delta) error {
			_, err := sess.ApplyDelta(delta)
			return err
		})
	}
}

// BenchmarkPlannerJoin measures the cost-based planning layer (PR 4) on
// the skewed-cardinality workload (one dense hub atom + selective atoms,
// workload.SkewedJoin), running the exact E20 items: "structural" forces
// the historical most-bound-first order, "planner" lets the
// cardinality-estimated order and the semijoin domain reduction run. The
// acceptance floor is a measurable speedup on every path (see E20's
// metrics in BENCH_engine.json for recorded ratios).
func BenchmarkPlannerJoin(b *testing.B) {
	items, err := exp.PlannerJoinItems(1)
	if err != nil {
		b.Fatal(err)
	}
	for _, it := range items {
		run := func(name string, eval func() (*pattern.TupleSet, error)) {
			b.Run(it.Name+"/"+name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := eval(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		run("structural", it.Structural)
		run("planner", it.Planned)
	}
}

// BenchmarkYannakakis measures the planner-v2 acyclic-join specialization
// (PR 9) on the E25 workload families: a dead-end chain (every
// backtracking anchor explores ~width·fanout² partial assignments that
// die one atom later) and a tri-label star under ans(x) (backtracking
// enumerates fanout³ assignments per center that all project to one output
// tuple). "backtracking" runs with the Yannakakis switch off,
// "yannakakis" with the GYO join tree + semijoin passes + backtrack-free
// enumeration on. The acceptance floor for PR 9 is yannakakis ≥ 2x faster
// on both families (see E25's metrics in BENCH_engine.json).
func BenchmarkYannakakis(b *testing.B) {
	families := []struct {
		name, src string
		db        *graph.DB
	}{
		{"dead-end-chain", "ans(x0, x3)\nx0 x1 : a\nx1 x2 : a\nx2 x3 : a",
			workload.DeadEndChain(3, 120, 20, 2)},
		{"tri-label-star", "ans(x)\nx y1 : a\nx y2 : b\nx y3 : c",
			workload.TriStar(30, 20)},
	}
	for _, f := range families {
		plan, err := cxrpq.PrepareSrc(f.src)
		if err != nil {
			b.Fatal(err)
		}
		f.db.Index() // shared state: warm outside the timings
		run := func(name string, on bool) {
			b.Run(f.name+"/"+name, func(b *testing.B) {
				prev := planner.SetYannakakis(on)
				defer planner.SetYannakakis(prev)
				for i := 0; i < b.N; i++ {
					if _, err := plan.Bind(f.db).Eval(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		run("backtracking", false)
		run("yannakakis", true)
	}
}

func BenchmarkE25PlannerV2(b *testing.B) { benchTable(b, exp.E25PlannerV2) }

// BenchmarkAnyK measures the incremental any-k ranked enumerator (PR 10) on
// the E26 gMark-style workload: "first/anyk" pulls one ranked row through the
// priority-queue producer on a session-cold bind, "first/drain" forces the
// historical drain-then-sort producer via a custom comparator replicating the
// default order (so only the production strategy differs), and "top64/anyk"
// pulls a 64-row ranked prefix. The acceptance floor for PR 10 is
// first/anyk ≥ 50x faster than first/drain (asserted inside E26; see
// BENCH_engine.json for recorded ratios).
func BenchmarkAnyK(b *testing.B) {
	db := workload.GMark(7, 1200)
	db.Index() // shared label index: warm outside the timings
	plan := cxrpq.MustPrepare(cxrpq.MustParse("ans(x, z)\nx y : a+\ny z : b+"))
	drainLess := func(a, c cxrpq.Row) bool { // default order, forcing the drain producer
		if a.Cost != c.Cost {
			return a.Cost < c.Cost
		}
		n := len(a.Tuple)
		if len(c.Tuple) < n {
			n = len(c.Tuple)
		}
		for i := 0; i < n; i++ {
			if a.Tuple[i] != c.Tuple[i] {
				return a.Tuple[i] < c.Tuple[i]
			}
		}
		return len(a.Tuple) < len(c.Tuple)
	}
	first := func(b *testing.B, opts cxrpq.StreamOptions) {
		for i := 0; i < b.N; i++ {
			cur, err := plan.Bind(db).Stream(opts)
			if err != nil {
				b.Fatal(err)
			}
			if rows := cur.Fetch(1); len(rows) != 1 {
				b.Fatal("no first row")
			}
			cur.Close()
		}
	}
	b.Run("first/anyk", func(b *testing.B) { first(b, cxrpq.StreamOptions{Ranked: true}) })
	b.Run("first/drain", func(b *testing.B) { first(b, cxrpq.StreamOptions{Ranked: true, Less: drainLess}) })
	b.Run("top64/anyk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cur, err := plan.Bind(db).Stream(cxrpq.StreamOptions{Ranked: true, Limit: 64})
			if err != nil {
				b.Fatal(err)
			}
			if rows := cur.Fetch(64); len(rows) != 64 {
				b.Fatalf("ranked prefix delivered %d rows", len(rows))
			}
			cur.Close()
		}
	})
}

func BenchmarkE26RankedTTFR(b *testing.B) { benchTable(b, exp.E26RankedTTFR) }

// TestEmitBenchJSON writes the machine-readable experiment benchmark report
// when BENCH_JSON names an output path (e.g. BENCH_JSON=BENCH_engine.json
// go test -run TestEmitBenchJSON .), the same format cxrpq-exp -json emits.
func TestEmitBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<path> to emit the benchmark report")
	}
	tts := exp.AllTimed(1)
	for _, tt := range tts {
		if tt.Table.Err != nil {
			t.Fatalf("%s: %v", tt.Table.ID, tt.Table.Err)
		}
	}
	if err := exp.WriteBenchJSON(path, tts, 1); err != nil {
		t.Fatal(err)
	}
}
